#include "fault/adapt.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "apps/driver.hpp"
#include "core/redistribution.hpp"
#include "fault/injector.hpp"
#include "fault/scenario_lint.hpp"
#include "instrument/trace.hpp"
#include "obs/attribution.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "util/check.hpp"

namespace mheta::fault {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kStatic: return "static";
    case Policy::kAdaptive: return "adaptive";
    case Policy::kOracle: return "oracle";
  }
  return "?";
}

std::optional<Policy> parse_policy(const std::string& s) {
  if (s == "static") return Policy::kStatic;
  if (s == "adaptive") return Policy::kAdaptive;
  if (s == "oracle") return Policy::kOracle;
  return std::nullopt;
}

namespace {

/// Terms a redistribution can move between nodes: computation and local
/// I/O. The remaining terms (send, recv_wait, collective) ride the shared
/// network, where only *asymmetric* drift is addressable.
bool node_local_term(int term) { return term <= 3; }

}  // namespace

DriftReport measure_drift(
    const std::vector<std::vector<core::CostTerms>>& predicted,
    const std::vector<std::vector<core::CostTerms>>& actual,
    double term_share_min) {
  DriftReport report;
  MHETA_CHECK_MSG(predicted.size() == actual.size(),
                  "drift: section counts differ");
  const int ranks =
      predicted.empty() ? 0 : static_cast<int>(predicted.front().size());

  std::vector<core::CostTerms> p_tot(static_cast<std::size_t>(ranks));
  std::vector<core::CostTerms> a_tot(static_cast<std::size_t>(ranks));
  double predicted_end = 0;
  double actual_end = 0;
  for (int r = 0; r < ranks; ++r) {
    for (std::size_t sec = 0; sec < predicted.size(); ++sec) {
      p_tot[static_cast<std::size_t>(r)] +=
          predicted[sec][static_cast<std::size_t>(r)];
      a_tot[static_cast<std::size_t>(r)] +=
          actual[sec][static_cast<std::size_t>(r)];
    }
    predicted_end = std::max(predicted_end, p_tot[static_cast<std::size_t>(r)].total());
    actual_end = std::max(actual_end, a_tot[static_cast<std::size_t>(r)].total());
  }

  for (int t = 0; t < core::kCostTermCount; ++t) {
    // Signed relative errors of the qualifying nodes for this term.
    std::vector<double> rels;
    for (int r = 0; r < ranks; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      const double p = core::cost_term_value(p_tot[i], t);
      const double a = core::cost_term_value(a_tot[i], t);
      const double hi = std::max(p, a);
      const double node_scale = std::max(p_tot[i].total(), a_tot[i].total());
      if (hi < term_share_min * node_scale) continue;
      const double rel = (a - p) / hi;
      rels.push_back(rel);
      if (std::abs(rel) > report.worst) {
        report.worst = std::abs(rel);
        report.worst_rank = r;
        report.worst_term = t;
      }
    }
    if (rels.empty()) continue;
    double term_actionable = 0;
    if (node_local_term(t)) {
      // A node computing or reading slower than modelled can always be
      // relieved by moving rows off it.
      for (double rel : rels)
        term_actionable = std::max(term_actionable, std::abs(rel));
    } else {
      // Shared-network terms: uniform inflation (every node's waits grow by
      // the same factor — global contention) cannot be rebalanced away, so
      // only the spread across nodes counts. A single drifting node is
      // maximally asymmetric.
      if (rels.size() == 1) {
        term_actionable = std::abs(rels.front());
      } else {
        const auto [lo, hi] = std::minmax_element(rels.begin(), rels.end());
        term_actionable = *hi - *lo;
      }
    }
    report.actionable = std::max(report.actionable, term_actionable);
  }

  const double lo = std::min(predicted_end, actual_end);
  report.headline = lo > 0 ? std::abs(actual_end - predicted_end) / lo : 0;
  return report;
}

namespace {

/// Same dispatcher as mheta-profile's: one name, six algorithms.
search::SearchResult run_search(const std::string& algorithm,
                                const search::Objective& objective,
                                const dist::GenBlock& start,
                                const dist::DistContext& ctx,
                                cluster::SpectrumKind spectrum,
                                std::uint64_t seed) {
  if (algorithm == "tabu")
    return search::tabu_search(start, objective, {}, seed);
  if (algorithm == "anneal")
    return search::simulated_annealing(start, objective, {}, seed);
  if (algorithm == "hill")
    return search::hill_climb(start, objective, {}, seed);
  if (algorithm == "genetic") return search::genetic(ctx, objective, {}, seed);
  if (algorithm == "gbs") {
    search::SpectrumSpace space(ctx, spectrum);
    return search::gbs(space, objective);
  }
  if (algorithm == "random") {
    search::SpectrumSpace space(ctx, spectrum);
    return search::random_search(space, objective, 64, seed);
  }
  MHETA_CHECK_MSG(false, "unknown search algorithm '" << algorithm << "'");
  return {};
}

/// Best distribution for `arch_now` according to `predictor`, starting the
/// vector-space algorithms from `start`.
search::SearchResult search_best(const cluster::ArchConfig& arch_now,
                                 const exp::Workload& w,
                                 const core::Predictor& predictor,
                                 const dist::GenBlock& start,
                                 const AdaptOptions& opts,
                                 std::uint64_t seed) {
  const dist::DistContext ctx = exp::make_context(arch_now, w, opts.experiment);
  const search::CachingObjective cached(search::make_objective(
      predictor, 1, arch_now.cluster));
  return run_search(opts.algorithm, search::Objective(cached), start, ctx,
                    arch_now.spectrum, seed);
}

/// The architecture as the scenario leaves it in `epoch`.
cluster::ArchConfig perturbed_arch(const cluster::ArchConfig& arch,
                                   const Scenario& s, int epoch) {
  cluster::ArchConfig out = arch;
  out.cluster = perturbed_config(arch.cluster, s, epoch);
  return out;
}

/// Per-epoch simulator effects: identical across policies (keyed only on
/// the scenario), different across epochs so runtime noise never repeats.
cluster::SimEffects epoch_effects(const AdaptOptions& opts, const Scenario& s,
                                  int epoch) {
  cluster::SimEffects effects = opts.experiment.effects;
  effects.seed = effects.seed + s.seed * 1000003u +
                 static_cast<std::uint64_t>(epoch) * 7919u;
  return effects;
}

struct EpochRun {
  double seconds = 0;
  std::vector<std::vector<core::CostTerms>> actual;  ///< traced runs only
};

/// Runs one epoch's iterations under `d` with the epoch's perturbations
/// live-injected at the timed-region start; traces when `traced`.
EpochRun run_epoch(const cluster::ArchConfig& arch, const exp::Workload& w,
                   const Scenario& s, int epoch, const dist::GenBlock& d,
                   const AdaptOptions& opts, bool traced) {
  // Memory shrink feeds the out-of-core planner at construction, so it
  // rides the config; everything else is injected into the live world.
  const cluster::ClusterConfig config = memory_config(arch.cluster, s, epoch);
  const FaultInjector injector(s, epoch, config.size());

  apps::RunOptions run;
  run.iterations = s.iterations_per_epoch;
  run.runtime = opts.experiment.runtime;
  run.before_iterations = injector.callback();
  std::optional<instrument::TraceCollector> trace;
  if (traced) {
    run.setup = [&](mpi::World& world) {
      trace.emplace(world);
      trace->install();
    };
  }
  const apps::RunResult result = apps::run_program(
      config, epoch_effects(opts, s, epoch), w.program, d, run);

  EpochRun out;
  out.seconds = result.seconds;
  if (traced)
    out.actual = obs::attribute_trace(*trace, w.program, config.size(),
                                      result.timed_start_s);
  return out;
}

}  // namespace

PolicyResult run_policy(Policy policy, const cluster::ArchConfig& arch,
                        const exp::Workload& w, const Scenario& s,
                        const AdaptOptions& opts) {
  analysis::enforce(lint_scenario(s, nullptr, &arch.cluster),
                    "scenario '" + s.name + "'");
  MHETA_CHECK_MSG(opts.hysteresis >= 1, "hysteresis must be >= 1");

  // Every policy starts from the same footing: the model of the nominal
  // machine and the search's best distribution on it (the static optimum).
  core::Predictor predictor =
      exp::build_predictor(arch, w, opts.experiment);
  const dist::GenBlock blk =
      dist::block_dist(exp::make_context(arch, w, opts.experiment));
  dist::GenBlock current =
      search_best(arch, w, predictor, blk, opts, opts.search_seed).best;

  PolicyResult result;
  result.policy = policy;
  int drift_streak = 0;
  // Presumed bias of the *current* model: the actionable drift on the
  // first epoch it served, capped at the reaction threshold. Every model
  // carries some irreducible bias (e.g. the alltoall term on
  // all-to-all-heavy programs) that re-calibration cannot remove, and the
  // controller must not chase it forever — but drift far above the
  // threshold right after a calibration is a hardware change, not bias, so
  // only threshold-level bias is ever presumed. Anchoring once — not
  // min-tracking — keeps phases where the metric is transiently low (a
  // contention window swamping the biased term) from later making the
  // bias look fresh.
  std::optional<double> drift_floor;
  // Actionable level of the last reaction that concluded "stay". Drift can
  // look asymmetric (per-node wait spreads under global contention) while
  // the re-search finds nothing movable; once the controller has paid to
  // learn that, it does not pay again for the same or weaker evidence. A
  // fruitful reaction (an actual switch) clears the suppression.
  double fruitless_at = 0;

  for (int epoch = 0; epoch < s.epochs; ++epoch) {
    EpochRecord rec;
    rec.epoch = epoch;
    rec.perturbed = any_active(s, epoch);

    if (policy == Policy::kOracle) {
      // The oracle re-models each epoch's true hardware and switches for
      // free — the bound on what any reactive policy could recover. On
      // unperturbed epochs the nominal model already is the truth.
      const cluster::ArchConfig arch_now =
          rec.perturbed ? perturbed_arch(arch, s, epoch) : arch;
      const core::Predictor oracle_model =
          rec.perturbed ? exp::build_predictor(arch_now, w, opts.experiment)
                        : predictor;
      const search::SearchResult sr =
          search_best(arch_now, w, oracle_model, current, opts,
                      opts.search_seed + static_cast<std::uint64_t>(epoch) + 1);
      // Even the oracle's model has finite accuracy; only move on a
      // meaningful predicted margin, or model error alone could make the
      // oracle pick a distribution the simulation runs slower than static.
      const double stay_s = oracle_model.predict(current).total_s;
      if (sr.best_time < stay_s * (1 - opts.switch_margin) &&
          !(sr.best == current)) {
        current = sr.best;
        rec.switched = true;
        ++result.switches;
      }
      rec.predicted_s =
          oracle_model.predict(current, s.iterations_per_epoch).total_s;
    } else {
      rec.predicted_s =
          predictor.predict(current, s.iterations_per_epoch).total_s;
    }

    const bool traced = policy == Policy::kAdaptive;
    const EpochRun run = run_epoch(arch, w, s, epoch, current, opts, traced);
    rec.epoch_s = run.seconds;
    rec.dist = current.counts();

    if (traced) {
      // Drift: the model's attributed decomposition of this epoch against
      // what the traced simulation actually spent, term by term.
      const core::AttributedPrediction attributed =
          predictor.predict_attributed(current, s.iterations_per_epoch);
      const DriftReport drift =
          measure_drift(attributed.terms, run.actual, opts.term_share_min);
      rec.drift = drift.worst;
      rec.actionable = drift.actionable;
      // Streak on the *actionable* drift in excess of the model's floor:
      // uniform network contention inflates `worst` but no redistribution
      // addresses it, and a model's own persistent bias re-appears after
      // every re-calibration, so reacting to either would be pure overhead.
      if (!drift_floor)
        drift_floor = std::min(drift.actionable, opts.drift_threshold);
      drift_streak = drift.actionable - *drift_floor > opts.drift_threshold
                         ? drift_streak + 1
                         : 0;

      const int remaining = (s.epochs - epoch - 1) * s.iterations_per_epoch;
      if (drift_streak >= opts.hysteresis && remaining > 0 &&
          drift.actionable > fruitless_at) {
        // React: pay for one instrumented iteration on the machine as the
        // controller just observed it, re-search, and switch only if the
        // remaining iterations amortize the redistribution.
        const cluster::ArchConfig arch_now = perturbed_arch(arch, s, epoch);
        double instrumented_s = 0;
        core::Predictor remodel = exp::build_predictor(
            arch_now, w, opts.experiment, &instrumented_s);
        rec.overhead_s += instrumented_s;
        rec.recalibrated = true;
        ++result.recalibrations;

        const search::SearchResult sr =
            search_best(arch_now, w, remodel, current, opts,
                        opts.search_seed + static_cast<std::uint64_t>(epoch) + 1);
        if (!(sr.best == current)) {
          const core::SwitchPlan plan = core::plan_switch(
              remodel, w.program, remodel.params(), current, sr.best);
          if (plan.worthwhile(remaining)) {
            rec.overhead_s += plan.switch_cost_s;
            current = sr.best;
            rec.switched = true;
            ++result.switches;
          }
        }
        fruitless_at = rec.switched ? 0 : drift.actionable;
        // Adopt the re-measured model either way: it is the controller's
        // best description of the machine it is now running on. Its bias
        // floor is unknown until it serves an epoch.
        predictor = std::move(remodel);
        drift_streak = 0;
        drift_floor.reset();
      }
    }

    result.total_s += rec.epoch_s + rec.overhead_s;
    result.overhead_s += rec.overhead_s;
    result.epochs.push_back(std::move(rec));
  }
  return result;
}

bool ChaosRunResult::ordered(double tol_rel) const {
  return oracle.total_s <= adaptive.total_s * (1 + tol_rel) &&
         adaptive.total_s <= static_best.total_s * (1 + tol_rel);
}

ChaosRunResult run_chaos(const cluster::ArchConfig& arch,
                         const exp::Workload& w, const Scenario& s,
                         const AdaptOptions& opts) {
  ChaosRunResult result;
  result.workload = w.name;
  result.arch = arch.cluster.name;
  result.scenario = s.name;
  result.seed = s.seed;
  result.epochs = s.epochs;
  result.iterations_per_epoch = s.iterations_per_epoch;
  result.algorithm = opts.algorithm;
  result.static_best = run_policy(Policy::kStatic, arch, w, s, opts);
  result.adaptive = run_policy(Policy::kAdaptive, arch, w, s, opts);
  result.oracle = run_policy(Policy::kOracle, arch, w, s, opts);
  return result;
}

}  // namespace mheta::fault
