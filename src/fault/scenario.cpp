#include "fault/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace mheta::fault {

const char* to_string(PerturbKind k) {
  switch (k) {
    case PerturbKind::kCpuSlowdown: return "cpu-slow";
    case PerturbKind::kDiskSlowdown: return "disk-slow";
    case PerturbKind::kNetContention: return "net-contend";
    case PerturbKind::kMemShrink: return "mem-shrink";
    case PerturbKind::kNodePause: return "pause";
  }
  return "?";
}

std::optional<PerturbKind> parse_perturb_kind(const std::string& s) {
  if (s == "cpu-slow") return PerturbKind::kCpuSlowdown;
  if (s == "disk-slow") return PerturbKind::kDiskSlowdown;
  if (s == "net-contend") return PerturbKind::kNetContention;
  if (s == "mem-shrink") return PerturbKind::kMemShrink;
  if (s == "pause") return PerturbKind::kNodePause;
  return std::nullopt;
}

double effective_magnitude(const Scenario& s, std::size_t index, int epoch) {
  MHETA_CHECK(index < s.perturbations.size());
  const Perturbation& p = s.perturbations[index];
  double m = p.magnitude;
  if (p.jitter_rel > 0) {
    // One independent stream per (perturbation, epoch): the draw never
    // depends on which other perturbations exist or which epochs ran.
    Rng rng(s.seed, 0xFA17u + (static_cast<std::uint64_t>(index) << 20) +
                        static_cast<std::uint64_t>(epoch));
    m *= rng.noise_factor(p.jitter_rel);
  }
  // Clamp back into the kind's representable range so jitter can never turn
  // a slowdown into a speedup or shrink memory to zero.
  switch (p.kind) {
    case PerturbKind::kCpuSlowdown:
    case PerturbKind::kDiskSlowdown:
    case PerturbKind::kNetContention:
      return std::max(1.0, m);
    case PerturbKind::kMemShrink:
      return std::clamp(m, 1e-3, 1.0);
    case PerturbKind::kNodePause:
      return std::max(0.0, m);
  }
  return m;
}

namespace {

/// Applies perturbation `p` at magnitude `m` to `config` in place.
void apply(cluster::ClusterConfig& config, const Perturbation& p, double m) {
  const int first = p.node < 0 ? 0 : p.node;
  const int last = p.node < 0 ? config.size() - 1 : p.node;
  MHETA_CHECK_MSG(first >= 0 && last < config.size(),
                  "perturbation node " << p.node << " outside cluster of "
                                       << config.size());
  switch (p.kind) {
    case PerturbKind::kCpuSlowdown:
      for (int i = first; i <= last; ++i)
        config.nodes[static_cast<std::size_t>(i)].cpu_power /= m;
      break;
    case PerturbKind::kDiskSlowdown:
      for (int i = first; i <= last; ++i) {
        auto& n = config.nodes[static_cast<std::size_t>(i)];
        n.disk_read_seek_s *= m;
        n.disk_write_seek_s *= m;
        n.disk_read_s_per_byte *= m;
        n.disk_write_s_per_byte *= m;
      }
      break;
    case PerturbKind::kNetContention:
      config.network.latency_s *= m;
      config.network.s_per_byte *= m;
      break;
    case PerturbKind::kMemShrink:
      for (int i = first; i <= last; ++i) {
        auto& n = config.nodes[static_cast<std::size_t>(i)];
        n.memory_bytes = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::llround(static_cast<double>(n.memory_bytes) * m)));
      }
      break;
    case PerturbKind::kNodePause:
      break;  // transient; see pauses_at
  }
}

}  // namespace

cluster::ClusterConfig perturbed_config(const cluster::ClusterConfig& base,
                                        const Scenario& s, int epoch) {
  cluster::ClusterConfig config = base;
  for (std::size_t i = 0; i < s.perturbations.size(); ++i) {
    const Perturbation& p = s.perturbations[i];
    if (!p.active(epoch) || p.kind == PerturbKind::kNodePause) continue;
    apply(config, p, effective_magnitude(s, i, epoch));
  }
  return config;
}

cluster::ClusterConfig memory_config(const cluster::ClusterConfig& base,
                                     const Scenario& s, int epoch) {
  cluster::ClusterConfig config = base;
  for (std::size_t i = 0; i < s.perturbations.size(); ++i) {
    const Perturbation& p = s.perturbations[i];
    if (!p.active(epoch) || p.kind != PerturbKind::kMemShrink) continue;
    apply(config, p, effective_magnitude(s, i, epoch));
  }
  return config;
}

std::vector<PauseSpec> pauses_at(const Scenario& s, int epoch, int nodes) {
  std::vector<PauseSpec> out;
  for (std::size_t i = 0; i < s.perturbations.size(); ++i) {
    const Perturbation& p = s.perturbations[i];
    if (!p.active(epoch) || p.kind != PerturbKind::kNodePause) continue;
    const double seconds = effective_magnitude(s, i, epoch);
    if (seconds <= 0) continue;
    const int first = p.node < 0 ? 0 : p.node;
    const int last = p.node < 0 ? nodes - 1 : p.node;
    for (int n = first; n <= last; ++n) out.push_back({n, seconds});
  }
  return out;
}

bool any_active(const Scenario& s, int epoch) {
  return std::any_of(s.perturbations.begin(), s.perturbations.end(),
                     [&](const Perturbation& p) { return p.active(epoch); });
}

}  // namespace mheta::fault
