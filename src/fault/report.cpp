#include "fault/report.hpp"

#include <iomanip>
#include <ostream>

#include "obs/json.hpp"

namespace mheta::fault {

namespace {

using obs::json_escape;
using obs::json_number;

void write_epoch_json(std::ostream& os, const EpochRecord& e,
                      const char* indent) {
  os << indent << "{\"epoch\": " << e.epoch
     << ", \"seconds\": " << json_number(e.epoch_s)
     << ", \"overhead_s\": " << json_number(e.overhead_s)
     << ", \"predicted_s\": " << json_number(e.predicted_s)
     << ", \"drift\": " << json_number(e.drift)
     << ", \"actionable\": " << json_number(e.actionable)
     << ", \"perturbed\": " << (e.perturbed ? "true" : "false")
     << ", \"recalibrated\": " << (e.recalibrated ? "true" : "false")
     << ", \"switched\": " << (e.switched ? "true" : "false")
     << ", \"dist\": [";
  for (std::size_t i = 0; i < e.dist.size(); ++i) {
    if (i) os << ", ";
    os << e.dist[i];
  }
  os << "]}";
}

void write_policy_json(std::ostream& os, const PolicyResult& p) {
  os << "    " << json_escape(to_string(p.policy)) << ": {\n";
  os << "      \"total_s\": " << json_number(p.total_s) << ",\n";
  os << "      \"overhead_s\": " << json_number(p.overhead_s) << ",\n";
  os << "      \"switches\": " << p.switches << ",\n";
  os << "      \"recalibrations\": " << p.recalibrations << ",\n";
  os << "      \"epochs\": [\n";
  for (std::size_t i = 0; i < p.epochs.size(); ++i) {
    write_epoch_json(os, p.epochs[i], "        ");
    os << (i + 1 < p.epochs.size() ? ",\n" : "\n");
  }
  os << "      ]\n";
  os << "    }";
}

void write_policy_text(std::ostream& os, const PolicyResult& p) {
  os << to_string(p.policy) << ": total " << std::setprecision(6)
     << p.total_s << " s";
  if (p.overhead_s > 0) os << " (incl. " << p.overhead_s << " s overhead)";
  if (p.switches) os << ", " << p.switches << " switch(es)";
  if (p.recalibrations) os << ", " << p.recalibrations << " recalibration(s)";
  os << "\n";
  os << "  epoch   seconds  overhead     drift  actnble  flags\n";
  for (const EpochRecord& e : p.epochs) {
    os << "  " << std::setw(5) << e.epoch << "  " << std::setw(8)
       << std::setprecision(4) << e.epoch_s << "  " << std::setw(8)
       << e.overhead_s << "  " << std::setw(8) << e.drift << "  "
       << std::setw(7) << e.actionable << "  ";
    if (e.perturbed) os << "P";
    if (e.recalibrated) os << "R";
    if (e.switched) os << "S";
    os << "\n";
  }
}

}  // namespace

void write_chaos_json(std::ostream& os, const ChaosRunResult& r) {
  os << "{\n";
  os << "  \"workload\": " << json_escape(r.workload) << ",\n";
  os << "  \"arch\": " << json_escape(r.arch) << ",\n";
  os << "  \"scenario\": " << json_escape(r.scenario) << ",\n";
  os << "  \"seed\": " << r.seed << ",\n";
  os << "  \"epochs\": " << r.epochs << ",\n";
  os << "  \"iterations_per_epoch\": " << r.iterations_per_epoch << ",\n";
  os << "  \"algorithm\": " << json_escape(r.algorithm) << ",\n";
  os << "  \"ordered\": " << (r.ordered() ? "true" : "false") << ",\n";
  os << "  \"policies\": {\n";
  write_policy_json(os, r.static_best);
  os << ",\n";
  write_policy_json(os, r.adaptive);
  os << ",\n";
  write_policy_json(os, r.oracle);
  os << "\n  }\n";
  os << "}\n";
}

void write_chaos_text(std::ostream& os, const ChaosRunResult& r) {
  os << "chaos run: " << r.workload << " on " << r.arch << ", scenario '"
     << r.scenario << "' (" << r.epochs << " epochs x "
     << r.iterations_per_epoch << " iterations, seed " << r.seed << ")\n\n";
  write_policy_text(os, r.static_best);
  os << "\n";
  write_policy_text(os, r.adaptive);
  os << "\n";
  write_policy_text(os, r.oracle);
  os << "\n";
  const double saved = r.static_best.total_s - r.adaptive.total_s;
  const double bound = r.static_best.total_s - r.oracle.total_s;
  os << std::setprecision(6) << "adaptive saved " << saved
     << " s of the static total";
  if (bound > 0)
    os << " (" << std::setprecision(3) << 100.0 * saved / bound
       << "% of the oracle bound)";
  os << "\n";
  os << "invariant oracle <= adaptive <= static: "
     << (r.ordered() ? "holds" : "VIOLATED") << "\n";
}

}  // namespace mheta::fault
