#include "ooc/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mheta::ooc {

OocRuntime::OocRuntime(mpi::World& world, std::vector<ArraySpec> arrays,
                       const dist::GenBlock& dist, RuntimeOptions opts)
    : world_(world), arrays_(std::move(arrays)), dist_(dist), opts_(opts) {
  MHETA_CHECK(dist_.nodes() == world_.size());
  MHETA_CHECK(opts_.width_fractions.empty() ||
              static_cast<int>(opts_.width_fractions.size()) == world_.size());
  PlannerOptions popts = opts_.planner;
  popts.overhead_bytes = opts_.overhead_bytes;
  plans_.reserve(static_cast<std::size_t>(world_.size()));
  for (int r = 0; r < world_.size(); ++r) {
    // 2-D distributions narrow every array row to this rank's column block.
    std::vector<ArraySpec> rank_arrays = arrays_;
    for (auto& a : rank_arrays) a.row_bytes = scaled_row_bytes(r, a.row_bytes);
    plans_.push_back(plan_node(rank_arrays, dist_.count(r),
                               world_.config().node(r).memory_bytes, popts));
  }
}

std::int64_t OocRuntime::scaled_row_bytes(int rank,
                                          std::int64_t row_bytes) const {
  if (opts_.width_fractions.empty()) return row_bytes;
  const double frac = opts_.width_fractions[static_cast<std::size_t>(rank)];
  MHETA_CHECK(frac >= 0.0 && frac <= 1.0);
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(row_bytes) * frac));
}

const NodePlan& OocRuntime::plan(int rank) const {
  MHETA_CHECK(rank >= 0 && rank < world_.size());
  return plans_[static_cast<std::size_t>(rank)];
}

std::int64_t OocRuntime::la_rows(int rank) const { return dist_.count(rank); }

std::int64_t OocRuntime::first_row(int rank) const {
  return dist_.first_row(rank);
}

sim::Task<void> OocRuntime::load_arrays(int rank) {
  // Compulsory read of every in-core local array (paper §3.1: an in-core
  // application incurs a single disk read per local array). Out-of-core
  // arrays stay on disk and are streamed inside the stages.
  for (const ArrayPlan& ap : plan(rank).arrays) {
    if (!ap.out_of_core && ap.la_bytes() > 0) {
      co_await world_.file_read(rank, ap.name, 0, ap.la_bytes());
    }
  }
}


double OocRuntime::rows_work_s(int rank, const StageDef& stage,
                               std::int64_t begin, std::int64_t end) const {
  if (end <= begin) return 0.0;
  if (!stage.row_work) {
    return stage.work_per_row_s * static_cast<double>(end - begin);
  }
  const std::int64_t base = first_row(rank);
  double total = 0.0;
  for (std::int64_t r = begin; r < end; ++r)
    total += stage.row_work(base + r);
  return total;
}

double OocRuntime::stage_work_s(int rank, const StageDef& stage) const {
  return rows_work_s(rank, stage, 0, la_rows(rank));
}

std::int64_t OocRuntime::block_working_set(int rank, const StageDef& stage,
                                           std::int64_t rows) const {
  std::int64_t per_row = 0;
  const NodePlan& np = plan(rank);
  for (const auto& ap : np.arrays) {
    const bool used =
        std::find(stage.read_vars.begin(), stage.read_vars.end(), ap.name) !=
            stage.read_vars.end() ||
        std::find(stage.write_vars.begin(), stage.write_vars.end(), ap.name) !=
            stage.write_vars.end();
    if (used) per_row += ap.row_bytes;
  }
  return rows * per_row;
}

sim::Task<void> OocRuntime::run_stage(int rank, const StageDef& stage,
                                      double work_scale) {
  co_await run_stage_range(rank, stage, 0, la_rows(rank), work_scale);
}

sim::Task<void> OocRuntime::run_stage_range(int rank, const StageDef& stage,
                                            std::int64_t begin_row,
                                            std::int64_t end_row,
                                            double work_scale) {
  world_.stage_begin(rank, stage.id);
  const StageIoLayout io =
      stage_io_layout(plan(rank), stage, begin_row, end_row, opts_.force_io);
  if (end_row <= begin_row) {
    // Nothing assigned to this node in this stage.
    world_.stage_end(rank, stage.id);
    co_return;
  }
  if (stage.prefetch && !io.streamed_reads.empty() && io.num_blocks > 1) {
    co_await run_stage_prefetch(rank, stage, io, work_scale);
  } else {
    co_await run_stage_sync(rank, stage, io, work_scale);
  }
  world_.stage_end(rank, stage.id);
}

sim::Task<void> OocRuntime::run_stage_sync(int rank, const StageDef& stage,
                                           const StageIoLayout& io,
                                           double work_scale) {
  for (std::int64_t b = 0; b < io.num_blocks; ++b) {
    const std::int64_t begin = io.begin_row + b * io.rows_per_block;
    const std::int64_t end = std::min(io.end_row, begin + io.rows_per_block);
    const std::int64_t rows = end - begin;
    if (rows <= 0) break;
    for (const ArrayPlan* ap : io.streamed_reads) {
      co_await world_.file_read(rank, ap->name, begin * ap->row_bytes,
                                rows * ap->row_bytes);
    }
    co_await world_.compute(rank,
                            rows_work_s(rank, stage, begin, end) * work_scale,
                            block_working_set(rank, stage, rows));
    for (const ArrayPlan* ap : io.streamed_writes) {
      co_await world_.file_write(rank, ap->name, begin * ap->row_bytes,
                                 rows * ap->row_bytes);
    }
  }
}

sim::Task<void> OocRuntime::run_stage_prefetch(int rank, const StageDef& stage,
                                               const StageIoLayout& io,
                                               double work_scale) {
  // The unrolled loop of paper Figure 6:
  //   Read ICLA(1)
  //   for i = 2..last: Prefetch ICLA(i); Process ICLA(i-1); Wait ICLA(i);
  //                    write ICLA(i-1) if needed
  //   Process ICLA(last); write ICLA(last) if needed
  auto block_range = [&](std::int64_t b) {
    const std::int64_t begin = io.begin_row + b * io.rows_per_block;
    const std::int64_t end = std::min(io.end_row, begin + io.rows_per_block);
    return std::pair{begin, end};
  };

  {  // Read ICLA(1) synchronously.
    const auto [begin, end] = block_range(0);
    for (const ArrayPlan* ap : io.streamed_reads) {
      co_await world_.file_read(rank, ap->name, begin * ap->row_bytes,
                                (end - begin) * ap->row_bytes);
    }
  }
  for (std::int64_t b = 1; b < io.num_blocks; ++b) {
    const auto [begin, end] = block_range(b);
    const auto [pbegin, pend] = block_range(b - 1);
    if (end <= begin) break;
    std::vector<mpi::Request> reqs;
    reqs.reserve(io.streamed_reads.size());
    for (const ArrayPlan* ap : io.streamed_reads) {
      reqs.push_back(co_await world_.file_iread(rank, ap->name,
                                                begin * ap->row_bytes,
                                                (end - begin) * ap->row_bytes));
    }
    co_await world_.compute(
        rank, rows_work_s(rank, stage, pbegin, pend) * work_scale,
        block_working_set(rank, stage, pend - pbegin));
    for (auto& req : reqs) co_await world_.file_wait(rank, std::move(req));
    for (const ArrayPlan* ap : io.streamed_writes) {
      co_await world_.file_write(rank, ap->name, pbegin * ap->row_bytes,
                                 (pend - pbegin) * ap->row_bytes);
    }
  }
  {  // Process and write back the last block.
    const auto [begin, end] = block_range(io.num_blocks - 1);
    co_await world_.compute(rank,
                            rows_work_s(rank, stage, begin, end) * work_scale,
                            block_working_set(rank, stage, end - begin));
    for (const ArrayPlan* ap : io.streamed_writes) {
      co_await world_.file_write(rank, ap->name, begin * ap->row_bytes,
                                 (end - begin) * ap->row_bytes);
    }
  }
}

}  // namespace mheta::ooc
