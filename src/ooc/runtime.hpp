// The out-of-core execution runtime.
//
// Applications describe each stage (which arrays it reads/writes, how much
// work per row) and the runtime executes it on a rank: in-core arrays cost
// nothing per iteration, out-of-core arrays are streamed ICLA by ICLA, with
// an optional prefetching (unrolled) loop exactly as in paper Figure 6.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/genblock.hpp"
#include "mpi/world.hpp"
#include "ooc/array.hpp"
#include "ooc/planner.hpp"
#include "ooc/stage.hpp"
#include "sim/task.hpp"

namespace mheta::ooc {

/// Runtime options.
struct RuntimeOptions {
  /// Memory consumed by runtime buffers and halo rows on every node; the
  /// simulator's planner subtracts it from usable memory. The model's
  /// planner does not know about it (paper limitation 2), so local arrays
  /// that land within `overhead_bytes` of the capacity are misclassified
  /// as in core by the model.
  std::int64_t overhead_bytes = 0;

  PlannerOptions planner;

  /// Instrumented-iteration mode (paper §4.1.1): all distributed variables
  /// are forced through disk so per-variable latencies can be measured even
  /// on nodes that would be in core.
  bool force_io = false;

  /// 2-D distributions (extension): fraction of each array row held by
  /// each rank (its column block over the total columns). Empty means 1.0
  /// everywhere (pure 1-D row distribution). Scales the per-rank row bytes
  /// used for planning and I/O; the caller scales compute accordingly.
  std::vector<double> width_fractions;
};

/// Per-rank out-of-core runtime bound to a World and a distribution.
class OocRuntime {
 public:
  OocRuntime(mpi::World& world, std::vector<ArraySpec> arrays,
             const dist::GenBlock& dist, RuntimeOptions opts);

  const NodePlan& plan(int rank) const;
  std::int64_t la_rows(int rank) const;
  std::int64_t first_row(int rank) const;
  const std::vector<ArraySpec>& arrays() const { return arrays_; }
  const RuntimeOptions& options() const { return opts_; }

  /// Initial compulsory load of all local arrays (outside the timed
  /// iteration region; in-core arrays are read once here).
  sim::Task<void> load_arrays(int rank);

  /// Executes one stage on `rank` over all local rows. `work_scale`
  /// multiplies the stage's compute.
  sim::Task<void> run_stage(int rank, const StageDef& stage,
                            double work_scale = 1.0);

  /// Executes one stage over local rows [begin_row, end_row) — used by
  /// pipelined tiles, where each tile processes a slice of the local array.
  sim::Task<void> run_stage_range(int rank, const StageDef& stage,
                                  std::int64_t begin_row, std::int64_t end_row,
                                  double work_scale = 1.0);

  /// Seconds of baseline compute the stage performs on this rank in total
  /// (what the simulator will charge, before CPU-power scaling).
  double stage_work_s(int rank, const StageDef& stage) const;

 private:
  sim::Task<void> run_stage_sync(int rank, const StageDef& stage,
                                 const StageIoLayout& io, double work_scale);
  sim::Task<void> run_stage_prefetch(int rank, const StageDef& stage,
                                     const StageIoLayout& io, double work_scale);

  /// Compute seconds for rows [begin, end) of the local array.
  double rows_work_s(int rank, const StageDef& stage, std::int64_t begin,
                     std::int64_t end) const;

  /// Working-set bytes for a block of `rows` rows on this rank (drives the
  /// CPU-cache perturbation in the simulator).
  std::int64_t block_working_set(int rank, const StageDef& stage,
                                 std::int64_t rows) const;

  /// Scales an array's row bytes by the rank's width fraction.
  std::int64_t scaled_row_bytes(int rank, std::int64_t row_bytes) const;

  mpi::World& world_;
  std::vector<ArraySpec> arrays_;
  dist::GenBlock dist_;
  RuntimeOptions opts_;
  std::vector<NodePlan> plans_;
};

}  // namespace mheta::ooc
