// The memory planner: decides which local arrays are out of core and sizes
// their ICLAs (paper §4.2.1).
//
// The heuristic is deliberately simple, as in the paper ("MHETA currently
// uses a simple heuristic"): in-core arrays are chosen greedily smallest-
// first, and the remaining memory is divided among the out-of-core arrays
// proportionally to their local sizes. The *same* planner is used by the
// simulator runtime and by the model — but the simulator subtracts the
// runtime's buffer/halo overhead from usable memory while the model does
// not, reproducing the paper's limitation 2 (§5.4): the model occasionally
// classifies a borderline array as in core and under-predicts I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "ooc/array.hpp"

namespace mheta::ooc {

/// Planner tuning knobs.
struct PlannerOptions {
  /// Memory unavailable to local arrays (runtime buffers, halo rows).
  std::int64_t overhead_bytes = 0;

  /// Upper bound on NR(v); protects the simulator from degenerate cases
  /// where a sliver of free memory would create thousands of tiny blocks.
  std::int64_t max_blocks = 256;
};

/// Computes the plan for one node holding `la_rows` rows of every array.
NodePlan plan_node(const std::vector<ArraySpec>& arrays, std::int64_t la_rows,
                   std::int64_t memory_bytes, const PlannerOptions& opts);

}  // namespace mheta::ooc
