#include "ooc/planner.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace mheta::ooc {

std::int64_t ArrayPlan::num_blocks() const {
  if (!out_of_core) return 1;
  MHETA_CHECK(icla_rows > 0);
  return (la_rows + icla_rows - 1) / icla_rows;
}

const ArrayPlan& NodePlan::array(const std::string& name) const {
  for (const auto& a : arrays)
    if (a.name == name) return a;
  MHETA_CHECK_MSG(false, "no plan for array " << name);
  static const ArrayPlan dummy{};
  return dummy;  // unreachable
}

bool NodePlan::any_out_of_core() const {
  return std::any_of(arrays.begin(), arrays.end(),
                     [](const ArrayPlan& a) { return a.out_of_core; });
}

NodePlan plan_node(const std::vector<ArraySpec>& arrays, std::int64_t la_rows,
                   std::int64_t memory_bytes, const PlannerOptions& opts) {
  MHETA_CHECK(la_rows >= 0);
  MHETA_CHECK(memory_bytes >= 0);
  NodePlan plan;
  plan.memory_bytes = memory_bytes;
  const std::int64_t usable =
      std::max<std::int64_t>(0, memory_bytes - opts.overhead_bytes);

  // Greedy smallest-first in-core selection (stable order by size, then by
  // position, keeps the choice deterministic).
  std::vector<std::size_t> order(arrays.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return arrays[a].row_bytes < arrays[b].row_bytes;
  });

  std::vector<bool> in_core(arrays.size(), false);
  std::int64_t used = 0;
  for (std::size_t idx : order) {
    const std::int64_t la_bytes = la_rows * arrays[idx].row_bytes;
    if (used + la_bytes <= usable) {
      in_core[idx] = true;
      used += la_bytes;
    }
  }
  plan.in_core_bytes = used;

  // Remaining memory is shared by the out-of-core arrays proportionally to
  // their local sizes.
  std::int64_t ooc_total_bytes = 0;
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (!in_core[i]) ooc_total_bytes += la_rows * arrays[i].row_bytes;
  const std::int64_t available = usable - used;

  plan.arrays.reserve(arrays.size());
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    const ArraySpec& spec = arrays[i];
    ArrayPlan ap;
    ap.name = spec.name;
    ap.la_rows = la_rows;
    ap.row_bytes = spec.row_bytes;
    ap.access = spec.access;
    if (in_core[i] || la_rows == 0) {
      ap.out_of_core = false;
      ap.icla_rows = la_rows;
    } else {
      ap.out_of_core = true;
      const double share = ooc_total_bytes > 0
                               ? static_cast<double>(la_rows * spec.row_bytes) /
                                     static_cast<double>(ooc_total_bytes)
                               : 0.0;
      std::int64_t icla_bytes =
          static_cast<std::int64_t>(share * static_cast<double>(available));
      std::int64_t icla_rows = icla_bytes / std::max<std::int64_t>(1, spec.row_bytes);
      // Respect the block-count ceiling; it also guarantees icla_rows >= 1.
      const std::int64_t min_icla =
          (la_rows + opts.max_blocks - 1) / opts.max_blocks;
      ap.icla_rows = std::clamp(icla_rows, std::max<std::int64_t>(1, min_icla),
                                la_rows);
    }
    plan.arrays.push_back(std::move(ap));
  }
  return plan;
}

}  // namespace mheta::ooc
