// Distributed-array descriptors and out-of-core terminology (paper §3.1).
//
// Following [Bordawekar et al.]: a node's share of an array is its Local
// Array (LA); if the LA does not fit in memory it is an Out-of-Core Local
// Array (OCLA) processed in In-Core Local Array (ICLA) sized pieces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mheta::ooc {

/// Access mode of an array within the application.
enum class Access {
  kReadOnly,   // e.g. the CG/Lanczos matrix: read each iteration, never written
  kReadWrite,  // e.g. Jacobi's grid: read and written back each iteration
};

/// One distributed array (1-D row distribution; a row is the unit the
/// GEN_BLOCK distribution assigns).
struct ArraySpec {
  std::string name;
  std::int64_t rows = 0;       ///< global rows
  std::int64_t row_bytes = 0;  ///< bytes per row
  Access access = Access::kReadWrite;

  std::int64_t total_bytes() const { return rows * row_bytes; }
};

/// Per-array decision of the memory planner for one node.
struct ArrayPlan {
  std::string name;
  std::int64_t la_rows = 0;    ///< rows of the local array
  std::int64_t row_bytes = 0;
  Access access = Access::kReadWrite;
  bool out_of_core = false;
  /// Rows per in-core piece (== la_rows when in core).
  std::int64_t icla_rows = 0;

  std::int64_t la_bytes() const { return la_rows * row_bytes; }
  std::int64_t icla_bytes() const { return icla_rows * row_bytes; }
  /// NR(v): disk passes needed to stream the whole local array.
  std::int64_t num_blocks() const;
};

/// The full memory plan for one node.
struct NodePlan {
  std::vector<ArrayPlan> arrays;
  std::int64_t memory_bytes = 0;   ///< capacity the plan was computed for
  std::int64_t in_core_bytes = 0;  ///< memory held by in-core local arrays

  const ArrayPlan& array(const std::string& name) const;
  bool any_out_of_core() const;
};

}  // namespace mheta::ooc
