// Stage definitions and the shared stage-I/O layout.
//
// StageDef describes what a stage does; stage_io_layout() computes how its
// out-of-core I/O is blocked for a node. The layout function is shared by
// the simulator runtime and the MHETA model so that the model's equations
// and the runtime's loops agree on NR(v), ICLA boundaries and block ranges
// by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ooc/array.hpp"
#include "ooc/planner.hpp"

namespace mheta::ooc {

/// Per-row compute weight: seconds of baseline work for a global row index.
/// The default (uniform) weight is work_per_row_s; CG installs a sparse
/// nnz-dependent weight here, which MHETA cannot see (limitation 3, §5.4).
using RowWorkFn = std::function<double(std::int64_t global_row)>;

/// One stage of a tile (paper §3.1): computation plus the I/O it needs.
struct StageDef {
  int id = 0;

  /// Baseline seconds of computation per local row.
  double work_per_row_s = 0.0;

  /// Optional non-uniform per-row work; overrides work_per_row_s.
  RowWorkFn row_work;

  /// Distributed arrays streamed in (read) during the stage.
  std::vector<std::string> read_vars;

  /// Distributed arrays written back during the stage.
  std::vector<std::string> write_vars;

  /// Use the unrolled prefetch loop for out-of-core reads (Figure 6).
  bool prefetch = false;
};

/// How a stage's I/O is blocked over a row range on one node.
struct StageIoLayout {
  std::vector<const ArrayPlan*> streamed_reads;
  std::vector<const ArrayPlan*> streamed_writes;
  std::int64_t begin_row = 0;
  std::int64_t end_row = 0;
  std::int64_t num_blocks = 1;
  std::int64_t rows_per_block = 0;

  /// Row range [begin, end) of block b.
  std::pair<std::int64_t, std::int64_t> block_range(std::int64_t b) const {
    const std::int64_t begin = begin_row + b * rows_per_block;
    const std::int64_t end = std::min(end_row, begin + rows_per_block);
    return {begin, end};
  }
};

/// Computes the blocking of `stage` over local rows [begin_row, end_row).
/// With `force_io` (the instrumented iteration) every variable is streamed
/// through disk, even in-core ones.
StageIoLayout stage_io_layout(const NodePlan& plan, const StageDef& stage,
                              std::int64_t begin_row, std::int64_t end_row,
                              bool force_io);

/// Index-based variant for hot callers: `read_idx` / `write_idx` are
/// positions in `plan.arrays` (resolved from the stage's variable names
/// once, outside the loop), and `io`'s vectors are reused instead of
/// reallocated. Produces exactly the layout stage_io_layout would for a
/// stage with those variables.
void stage_io_layout_into(StageIoLayout& io, const NodePlan& plan,
                          const int* read_idx, std::size_t num_reads,
                          const int* write_idx, std::size_t num_writes,
                          std::int64_t begin_row, std::int64_t end_row,
                          bool force_io);

}  // namespace mheta::ooc
