#include "ooc/stage.hpp"

#include <algorithm>

namespace mheta::ooc {

StageIoLayout stage_io_layout(const NodePlan& plan, const StageDef& stage,
                              std::int64_t begin_row, std::int64_t end_row,
                              bool force_io) {
  StageIoLayout io;
  io.begin_row = begin_row;
  io.end_row = end_row;
  const std::int64_t range = std::max<std::int64_t>(0, end_row - begin_row);
  auto streamed = [&](const ArrayPlan& ap) {
    return ap.out_of_core || force_io;
  };
  for (const auto& name : stage.read_vars) {
    const ArrayPlan& ap = plan.array(name);
    if (streamed(ap)) io.streamed_reads.push_back(&ap);
  }
  for (const auto& name : stage.write_vars) {
    const ArrayPlan& ap = plan.array(name);
    if (streamed(ap)) io.streamed_writes.push_back(&ap);
  }
  std::int64_t nb = 1;
  auto blocks_for = [&](const ArrayPlan* ap) {
    if (!ap->out_of_core || ap->icla_rows <= 0) return std::int64_t{1};
    return (range + ap->icla_rows - 1) / ap->icla_rows;
  };
  for (const ArrayPlan* ap : io.streamed_reads) nb = std::max(nb, blocks_for(ap));
  for (const ArrayPlan* ap : io.streamed_writes) nb = std::max(nb, blocks_for(ap));
  io.num_blocks =
      std::max<std::int64_t>(1, std::min(nb, std::max<std::int64_t>(1, range)));
  io.rows_per_block =
      range == 0 ? 0 : (range + io.num_blocks - 1) / io.num_blocks;
  return io;
}

void stage_io_layout_into(StageIoLayout& io, const NodePlan& plan,
                          const int* read_idx, std::size_t num_reads,
                          const int* write_idx, std::size_t num_writes,
                          std::int64_t begin_row, std::int64_t end_row,
                          bool force_io) {
  io.streamed_reads.clear();
  io.streamed_writes.clear();
  io.begin_row = begin_row;
  io.end_row = end_row;
  const std::int64_t range = std::max<std::int64_t>(0, end_row - begin_row);
  auto streamed = [&](const ArrayPlan& ap) {
    return ap.out_of_core || force_io;
  };
  for (std::size_t i = 0; i < num_reads; ++i) {
    const ArrayPlan& ap = plan.arrays[static_cast<std::size_t>(read_idx[i])];
    if (streamed(ap)) io.streamed_reads.push_back(&ap);
  }
  for (std::size_t i = 0; i < num_writes; ++i) {
    const ArrayPlan& ap = plan.arrays[static_cast<std::size_t>(write_idx[i])];
    if (streamed(ap)) io.streamed_writes.push_back(&ap);
  }
  std::int64_t nb = 1;
  auto blocks_for = [&](const ArrayPlan* ap) {
    if (!ap->out_of_core || ap->icla_rows <= 0) return std::int64_t{1};
    return (range + ap->icla_rows - 1) / ap->icla_rows;
  };
  for (const ArrayPlan* ap : io.streamed_reads) nb = std::max(nb, blocks_for(ap));
  for (const ArrayPlan* ap : io.streamed_writes)
    nb = std::max(nb, blocks_for(ap));
  io.num_blocks =
      std::max<std::int64_t>(1, std::min(nb, std::max<std::int64_t>(1, range)));
  io.rows_per_block =
      range == 0 ? 0 : (range + io.num_blocks - 1) / io.num_blocks;
}

}  // namespace mheta::ooc
