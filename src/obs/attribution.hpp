// Prediction-error attribution (ISSUE 4 tentpole, piece 3).
//
// The model and the simulator both spend every second of a run on one of
// the paper's cost terms: computation (§4.2.1), synchronous file reads and
// writes (Eq. 1), unhidden prefetch latency (Eq. 2), send overheads and
// receive waits (Eq. 3/4), and collectives. The predicted side comes from
// core::Predictor::predict_attributed (each clock advance of the evaluation
// tagged with its term); the actual side is recovered here from an
// instrument::TraceCollector timeline of the same (app, arch, distribution)
// run. Comparing the two decompositions turns "the prediction is 4% off"
// into "the model under-estimates receive waits on node 3".
//
// Identity: per node, the sum over sections and terms of each side equals
// that side's completion time (within floating summation error) — predicted
// terms sum to Prediction::node_end_s, actual terms to the traced per-rank
// busy time, which is gapless inside the timed region.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/structure.hpp"
#include "instrument/trace.hpp"

namespace mheta::obs {

/// Cost-term index (core::cost_term_name order) charged for an operation's
/// duration; -1 for structural markers, which carry no time.
int cost_term_index(mpi::Op op);

/// Decomposes a traced run into per-(section, node) cost terms:
/// result[section_index][rank]. Events ending at or before `origin_s` (the
/// untimed initial load phase) are dropped; events are mapped to sections
/// by resolving their section id against `program`.
std::vector<std::vector<core::CostTerms>> attribute_trace(
    const instrument::TraceCollector& trace,
    const core::ProgramStructure& program, int ranks, double origin_s);

/// The full predicted-vs-actual decomposition of one profiled triple.
struct AttributionReport {
  std::string workload;
  std::string arch;
  std::string dist;
  int iterations = 1;

  std::vector<int> section_ids;  ///< by section index

  /// terms[section_index][rank], both sides over all iterations.
  std::vector<std::vector<core::CostTerms>> predicted;
  std::vector<std::vector<core::CostTerms>> actual;

  std::vector<double> predicted_node_end_s;
  std::vector<double> actual_node_end_s;
  double predicted_total_s = 0;  ///< headline prediction (max over nodes)
  double actual_total_s = 0;     ///< simulated run time (max over nodes)

  int nodes() const { return static_cast<int>(predicted_node_end_s.size()); }
  core::CostTerms predicted_node_total(int rank) const;
  core::CostTerms actual_node_total(int rank) const;

  /// |actual - predicted| / min(actual, predicted) — the paper's metric.
  double pct_diff() const;
};

/// Human-readable report: headline totals, then per-node tables of
/// predicted vs. actual vs. signed error (actual - predicted) per term.
void write_attribution_text(std::ostream& os, const AttributionReport& r);

/// Machine-readable rendering with the full per-(section, node) nesting.
void write_attribution_json(std::ostream& os, const AttributionReport& r);

}  // namespace mheta::obs
