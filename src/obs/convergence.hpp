// Search-convergence recording.
//
// ConvergenceRecorder wraps a search::Objective and logs every evaluation's
// cost together with the running best, without touching any search-algorithm
// signature — the algorithms just see an Objective. Safe under BatchObjective
// parallelism (samples append under a mutex); samples land in completion
// order, which for convergence monitoring is the order that matters.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "search/search.hpp"

namespace mheta::obs {

class ConvergenceRecorder {
 public:
  explicit ConvergenceRecorder(search::Objective inner);

  /// Evaluates and records. Copyable; copies share one sample log, so the
  /// recorder can be handed to search algorithms by value like any
  /// Objective.
  double operator()(const dist::GenBlock& d) const;

  /// Records a cost evaluated elsewhere (e.g. a lane-batched population
  /// scored outside the wrapped Objective) into the same sample log.
  void record(double cost) const;

  struct Sample {
    int evaluation = 0;  ///< 1-based completion index
    double cost = 0;     ///< this evaluation's cost
    double best = 0;     ///< best cost up to and including this evaluation
  };

  std::vector<Sample> series() const;
  int evaluations() const;
  /// Best cost recorded so far; 0 when nothing was evaluated.
  double best() const;

 private:
  struct State;
  search::Objective inner_;
  std::shared_ptr<State> state_;
};

/// CSV dump of a series: `evaluation,cost,best` with a header row.
void write_convergence_csv(std::ostream& os,
                           const std::vector<ConvergenceRecorder::Sample>& s);

}  // namespace mheta::obs
