#include "obs/profile.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>

#include "apps/driver.hpp"
#include "instrument/gantt.hpp"
#include "instrument/trace.hpp"
#include "obs/perfetto.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"

namespace mheta::obs {

dist::GenBlock dist_by_name(const dist::DistContext& ctx,
                            const std::string& name) {
  if (name == "even" || name == "blk") return dist::block_dist(ctx);
  if (name == "bal") return dist::balanced_dist(ctx);
  if (name == "ic") return dist::in_core_dist(ctx);
  if (name == "icbal") return dist::in_core_balanced_dist(ctx);
  throw std::runtime_error("unknown distribution '" + name +
                           "' (expected even|blk|bal|ic|icbal)");
}

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

search::SearchResult run_search(const std::string& algorithm,
                                const search::BatchObjective& objective,
                                const dist::GenBlock& start,
                                const dist::DistContext& ctx,
                                const cluster::ArchConfig& arch,
                                std::uint64_t seed) {
  if (algorithm == "tabu")
    return search::tabu_search(start, objective, {}, seed);
  if (algorithm == "anneal")
    // Inherently sequential (each candidate depends on the previous
    // accept/reject), so it consumes the scalar entry only.
    return search::simulated_annealing(
        start,
        search::Objective([&objective](const dist::GenBlock& d) {
          return objective(d);
        }),
        {}, seed);
  if (algorithm == "hill")
    return search::hill_climb(start, objective, {}, seed);
  if (algorithm == "genetic")
    return search::genetic(ctx, objective, {}, seed);
  if (algorithm == "gbs") {
    search::SpectrumSpace space(ctx, arch.spectrum);
    return search::gbs(space, objective);
  }
  if (algorithm == "random") {
    search::SpectrumSpace space(ctx, arch.spectrum);
    return search::random_search(space, objective, 64, seed);
  }
  throw std::runtime_error(
      "unknown search algorithm '" + algorithm +
      "' (expected tabu|gbs|anneal|genetic|random|hill)");
}

/// Opens an artifact for writing and remembers its path.
std::ofstream open_artifact(const std::filesystem::path& dir,
                            const char* name, std::vector<std::string>& files) {
  const std::filesystem::path p = dir / name;
  std::ofstream os(p);
  MHETA_CHECK(os.good());
  files.push_back(p.string());
  return os;
}

}  // namespace

ProfileResult run_profile(const exp::Workload& w, const ProfileOptions& opts,
                          MetricsRegistry& registry,
                          const std::string& out_dir) {
  const cluster::ArchConfig arch = cluster::find_arch(opts.arch);
  const int nodes = arch.cluster.size();
  const int iterations = opts.iterations > 0 ? opts.iterations : w.iterations;

  exp::ExperimentOptions eopts = opts.experiment;
  eopts.model.metrics = &registry;  // plan-LRU counters

  const core::Predictor predictor = exp::build_predictor(arch, w, eopts);
  const dist::DistContext ctx = exp::make_context(arch, w, eopts);
  const dist::GenBlock d = dist_by_name(ctx, opts.dist);

  // Predicted side: the full per-(section, node) cost decomposition.
  const core::AttributedPrediction attributed =
      predictor.predict_attributed(d, iterations);

  // Actual side: the same triple through the simulator, traced. The
  // teardown hook harvests utilization data that dies with the World.
  ProfileResult result;
  apps::RunOptions run;
  run.iterations = iterations;
  run.runtime = eopts.runtime;
  std::optional<instrument::TraceCollector> trace;
  run.setup = [&](mpi::World& world) {
    trace.emplace(world);
    trace->install();
  };
  run.teardown = [&](mpi::World& world) {
    const double elapsed = sim::to_seconds(world.engine().now());
    for (int r = 0; r < nodes; ++r) {
      const double cpu =
          elapsed > 0 ? clamp01(world.cpu_busy_seconds(r) / elapsed) : 0;
      const double disk =
          elapsed > 0 ? clamp01(world.disk(r).busy_seconds() / elapsed) : 0;
      result.cpu_utilization.push_back(cpu);
      result.disk_utilization.push_back(disk);
      const std::string suffix = "_node" + std::to_string(r);
      registry.gauge("cpu_utilization" + suffix).set(cpu);
      registry.gauge("disk_utilization" + suffix).set(disk);
    }
    // Transfers overlap on the shared network, so this is clamped.
    result.network_utilization =
        elapsed > 0 ? clamp01(world.network_busy_seconds() / elapsed) : 0;
    registry.gauge("network_utilization").set(result.network_utilization);
    registry.counter("sim_events_processed_total")
        .inc(world.engine().events_processed());
  };
  const apps::RunResult actual =
      apps::run_program(arch.cluster, eopts.effects, w.program, d, run);
  MHETA_CHECK(trace.has_value());

  // The report: both decompositions of the same triple, side by side.
  AttributionReport& report = result.report;
  report.workload = w.name;
  report.arch = opts.arch;
  report.dist = opts.dist;
  report.iterations = iterations;
  for (const auto& section : w.program.sections)
    report.section_ids.push_back(section.id);
  report.predicted = attributed.terms;
  report.actual =
      attribute_trace(*trace, w.program, nodes, actual.timed_start_s);
  report.predicted_node_end_s = attributed.prediction.node_end_s;
  report.actual_node_end_s = actual.node_seconds;
  report.predicted_total_s = attributed.prediction.total_s;
  report.actual_total_s = actual.seconds;

  // Critical-path pass: the same prediction once more through the traced
  // sweep (absolute clocks, one event per advance), folded into the blame
  // report and replayed per parameter for the what-if table. Only when
  // requested — the traced sweep is scalar-only and the fast paths stay
  // untouched otherwise.
  if (opts.critical_path) {
    const core::SweepTrace sweep = predictor.predict_traced(d, iterations);
    result.critical = true;
    result.blame = build_blame(predictor, sweep);
    result.blame.workload = w.name;
    result.blame.arch = opts.arch;
    result.blame.dist = opts.dist;
    result.sensitivity = what_if_sensitivity(predictor, d, iterations,
                                             result.blame,
                                             opts.sensitivity_epsilon);
    registry.gauge("critical_path_total_s").set(result.blame.total_s);
    for (int term = 0; term < core::kCostTermCount; ++term) {
      const double pct =
          result.blame.path_seconds > 0
              ? 100.0 * result.blame.term_s[static_cast<std::size_t>(term)] /
                    result.blame.path_seconds
              : 0;
      registry
          .gauge(std::string("critical_path_") + core::cost_term_name(term) +
                 "_pct")
          .set(pct);
    }
    registry.gauge("sensitivity_max_crosscheck_s")
        .set(result.sensitivity.max_replay_vs_brute_s);
  }

  // Objective cache: evaluate the profiled distribution twice so the cache
  // counters are meaningful even without a search pass (one miss, one hit).
  const search::CachingObjective cached(
      search::make_objective(predictor, iterations, arch.cluster), 4096,
      &registry);
  (void)cached(d);
  (void)cached(d);

  if (!opts.search.empty()) {
    // The search scores candidates through the lane-batched objective —
    // bit-identical to make_objective lane by lane, so the trajectory is
    // unchanged. Single candidates take its scalar (delta) path wrapped in
    // a memoizing cache just as a search driver would; population
    // algorithms route whole candidate sets through K-wide clock sweeps,
    // with every batch value fed into the convergence recorder. The
    // periodic cross-check keeps a live drift oracle in the metrics for
    // both paths.
    core::LaneOptions lopts;
    lopts.crosscheck_every = 16;
    lopts.metrics = &registry;
    const search::LaneObjective lanes(predictor, iterations, arch.cluster,
                                      lopts);
    // Certified branch-and-bound screen between the search and the lane
    // evaluator: candidates whose interval lower bound beats the incumbent
    // are never scored; everything scored pays the lo <= value <= hi
    // oracle, keeping a live soundness signal in the metrics (a violation
    // latches straight through to the lane path).
    search::BoundedOptions bopts;
    bopts.metrics = &registry;
    const search::BoundedObjective bounded(
        predictor, iterations, search::Objective(lanes),
        [lanes](const std::vector<dist::GenBlock>& cs) {
          return lanes.evaluate(cs);
        },
        bopts);
    const search::CachingObjective bounded_cached{search::Objective(bounded)};
    // With a critical-path report requested, an incumbent probe rides along
    // so the best distribution the search observed can be blamed afterwards.
    // Pruned candidates' certified lower bounds exceed the incumbent by
    // construction, so recording them can never displace the best.
    std::optional<search::IncumbentProbe> probe;
    if (opts.critical_path)
      probe.emplace(search::Objective(bounded_cached), &registry);
    const ConvergenceRecorder recorder{
        probe ? search::Objective(*probe) : search::Objective(bounded_cached)};
    const search::IncumbentProbe* probe_p = probe ? &*probe : nullptr;
    const search::BatchObjective batched(
        search::Objective(recorder),
        [&bounded, &recorder, probe_p](const std::vector<dist::GenBlock>& cs) {
          auto values = bounded(cs);
          for (std::size_t i = 0; i < values.size(); ++i) {
            if (probe_p != nullptr) probe_p->record(cs[i], values[i]);
            recorder.record(values[i]);
          }
          return values;
        });
    const search::SearchResult sr =
        run_search(opts.search, batched, d, ctx, arch, opts.seed);
    result.searched = true;
    result.search_algorithm = opts.search;
    result.search_best_s = sr.best_time;
    result.search_evaluations = sr.evaluations;
    result.convergence = recorder.series();
    result.delta = lanes.scalar_stats();
    result.lanes = lanes.stats();
    result.bounds = bounded.stats();
    registry.gauge("search_best_cost_s").set(sr.best_time);

    if (probe && probe->has_best()) {
      result.has_incumbent = true;
      result.incumbent_best_s = probe->best_value();
      result.incumbent_observed = probe->observed();
      result.incumbent_improvements = probe->improvements();
      const core::SweepTrace sweep =
          predictor.predict_traced(probe->best_candidate(), iterations);
      result.incumbent_blame = build_blame(predictor, sweep);
      result.incumbent_blame.workload = w.name;
      result.incumbent_blame.arch = opts.arch;
      result.incumbent_blame.dist = "incumbent(" + opts.search + ")";
      registry.gauge("incumbent_best_s").set(result.incumbent_best_s);
    }
  }

  result.objective_cache_hit_rate = cached.hit_rate();
  const core::Predictor::PlanCacheStats ps = predictor.plan_cache_stats();
  result.plan_cache_hit_rate =
      ps.hits + ps.misses > 0
          ? static_cast<double>(ps.hits) /
                static_cast<double>(ps.hits + ps.misses)
          : 0;
  registry.gauge("objective_cache_hit_rate")
      .set(result.objective_cache_hit_rate);
  registry.gauge("plan_cache_hit_rate").set(result.plan_cache_hit_rate);

  // Artifacts. Metrics exports go last so they snapshot everything above.
  const std::filesystem::path dir(out_dir);
  std::filesystem::create_directories(dir);
  {
    auto os = open_artifact(dir, "trace.json", result.files);
    ChromeTraceOptions topts;
    topts.origin_s = actual.timed_start_s;
    write_chrome_trace(os, *trace, nodes, topts);
  }
  {
    auto os = open_artifact(dir, "gantt.txt", result.files);
    instrument::render_gantt(os, *trace, nodes);
  }
  {
    auto os = open_artifact(dir, "attribution.txt", result.files);
    write_attribution_text(os, report);
  }
  {
    auto os = open_artifact(dir, "attribution.json", result.files);
    write_attribution_json(os, report);
  }
  if (result.searched) {
    auto os = open_artifact(dir, "convergence.csv", result.files);
    write_convergence_csv(os, result.convergence);
  }
  if (result.critical) {
    {
      auto os = open_artifact(dir, "critical_path.txt", result.files);
      write_blame_text(os, result.blame);
      write_sensitivity_text(os, result.sensitivity);
    }
    {
      auto os = open_artifact(dir, "critical_path.json", result.files);
      write_critical_path_json(os, result.blame, &result.sensitivity);
    }
    {
      auto os = open_artifact(dir, "critical_path_trace.json", result.files);
      write_critical_path_trace(os, result.blame);
    }
    if (result.has_incumbent) {
      auto os = open_artifact(dir, "incumbent_blame.json", result.files);
      write_critical_path_json(os, result.incumbent_blame);
    }
  }
  {
    auto os = open_artifact(dir, "metrics.json", result.files);
    registry.export_json(os);
  }
  {
    auto os = open_artifact(dir, "metrics.prom", result.files);
    registry.export_prometheus(os);
  }
  return result;
}

}  // namespace mheta::obs
