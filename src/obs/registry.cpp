#include "obs/registry.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace mheta::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("histogram bounds must be ascending");
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; the extra slot is +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) {
      // Linear interpolation inside bucket i. The overflow bucket has no
      // upper bound; report its lower bound (the last finite boundary).
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double hi = bounds_[i];
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double frac =
          (target - static_cast<double>(before)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> MetricsRegistry::default_time_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0};
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        Kind kind,
                                                        const std::string& help) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another kind");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = help;
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = find_or_create(name, Kind::kHistogram, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

void MetricsRegistry::export_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{";
  bool first = true;
  for (const auto& [name, e] : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "\n  " << json_escape(name) << ": {";
    switch (e.kind) {
      case Kind::kCounter:
        os << "\"type\": \"counter\", \"value\": " << e.counter->value();
        break;
      case Kind::kGauge:
        os << "\"type\": \"gauge\", \"value\": "
           << json_number(e.gauge->value());
        break;
      case Kind::kHistogram: {
        const auto& h = *e.histogram;
        os << "\"type\": \"histogram\", \"count\": " << h.count()
           << ", \"sum\": " << json_number(h.sum())
           << ", \"p50\": " << json_number(h.p50())
           << ", \"p95\": " << json_number(h.p95())
           << ", \"p99\": " << json_number(h.p99()) << ", \"buckets\": [";
        const auto counts = h.bucket_counts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) os << ", ";
          os << "{\"le\": "
             << (i < h.bounds().size() ? json_number(h.bounds()[i])
                                       : std::string("\"+Inf\""))
             << ", \"count\": " << counts[i] << "}";
        }
        os << "]";
        break;
      }
    }
    if (!e.help.empty()) os << ", \"help\": " << json_escape(e.help);
    os << "}";
  }
  os << "\n}\n";
}

void MetricsRegistry::export_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) os << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << ' ' << json_number(e.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        const auto& h = *e.histogram;
        os << "# TYPE " << name << " histogram\n";
        const auto counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          os << name << "_bucket{le=\""
             << (i < h.bounds().size() ? json_number(h.bounds()[i])
                                       : std::string("+Inf"))
             << "\"} " << cumulative << '\n';
        }
        os << name << "_sum " << json_number(h.sum()) << '\n'
           << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

}  // namespace mheta::obs
