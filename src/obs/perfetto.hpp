// Perfetto / Chrome trace-event JSON export of operation traces.
//
// Converts an instrument::TraceCollector timeline into the JSON
// trace-event format (the `{"traceEvents": [...]}` object form) loadable in
// ui.perfetto.dev or chrome://tracing:
//   - one track (tid) per rank, named "rank N", under one process;
//   - complete events (ph "X") per operation, categorized by op class
//     (compute / io / comm / collective), with bytes, peer, section, tile,
//     stage and the variable name carried in `args`;
//   - counter tracks (ph "C"): per-rank cumulative disk bytes and a 0/1
//     cpu-active square wave derived from compute events, so utilization is
//     visible live while scrubbing.
//
// Timestamps are microseconds of simulated time, relative to `origin_s`
// (pass the start of the timed region to drop the initial array loads at
// t < 0 — they are clamped out). Durations are always >= 0 and events on a
// track are emitted in begin-time order.
#pragma once

#include <iosfwd>

#include "instrument/trace.hpp"

namespace mheta::obs {

struct ChromeTraceOptions {
  /// Simulated time mapped to ts = 0; events that *end* before the origin
  /// are dropped (e.g. the untimed initial load phase).
  double origin_s = 0.0;

  /// Emit the per-rank counter tracks (cumulative disk bytes, cpu-active).
  bool counter_tracks = true;

  /// Emit flow arrows (ph "s"/"f") linking each send slice to the matched
  /// recv slice on the peer rank. Matching is FIFO per (sender, receiver)
  /// channel — the simulator's message-order guarantee — so every arrow
  /// joins the pair that actually communicated.
  bool flow_events = true;

  /// Process name shown in the UI.
  const char* process_name = "mheta simulated cluster";
};

/// Writes the collected events as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& os,
                        const instrument::TraceCollector& trace, int ranks,
                        const ChromeTraceOptions& opts = {});

/// Category string used for an operation class (exposed for tests).
const char* chrome_trace_category(mpi::Op op);

}  // namespace mheta::obs
