// Minimal JSON support for the observability layer.
//
// Writing: `json_escape` quotes a string per RFC 8259 and `json_number`
// renders a double round-trippably (17 significant digits; NaN/Inf, which
// JSON cannot represent, become null).
//
// Reading: a small recursive-descent parser into a `JsonValue` tree. It is
// not a general-purpose JSON library — it exists so the Perfetto-exporter
// tests can round-trip `trace.json` and so `mheta-profile` can self-check
// its outputs without external dependencies. It accepts exactly RFC 8259
// (no comments, no trailing commas) and rejects everything else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mheta::obs {

/// Returns `s` as a quoted JSON string literal (quotes included).
std::string json_escape(const std::string& s);

/// Renders a finite double round-trippably; non-finite values become "null".
std::string json_number(double v);

/// A parsed JSON document node.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;
};

/// Serializes a JsonValue tree back to a compact JSON document. Object
/// members render in key order (deterministic), numbers through
/// json_number — so non-finite doubles, which RFC 8259 cannot represent,
/// serialize as null rather than as the unparseable "nan"/"inf" tokens.
/// parse -> serialize -> parse round-trips every finite document exactly.
std::string json_serialize(const JsonValue& v);

/// Parser limits and policies for untrusted input. The defaults reproduce
/// the historical behavior (trusted, self-produced files); mheta-serve,
/// which parses bytes off a socket, tightens every knob.
struct JsonParseOptions {
  /// Maximum container nesting depth; deeper documents are rejected.
  int max_depth = 200;
  /// Maximum document size in bytes; 0 means unlimited.
  std::size_t max_bytes = 0;
  /// Reject objects that bind the same key twice. Off (last wins, the
  /// RFC 8259 "unpredictable behavior" everyone implements) by default.
  bool reject_duplicate_keys = false;
  /// Reject numbers that overflow double to +/-Inf (e.g. "1e999") — JSON
  /// has no non-finite values, so accepting them smuggles Inf/NaN into
  /// arithmetic that assumes finite inputs. Off by default.
  bool reject_nonfinite_numbers = false;

  /// The hardened profile used for network-facing parsing.
  static JsonParseOptions untrusted() {
    JsonParseOptions o;
    o.max_depth = 32;
    o.max_bytes = 1 << 20;
    o.reject_duplicate_keys = true;
    o.reject_nonfinite_numbers = true;
    return o;
  }
};

/// Parses a complete JSON document. On failure returns false and sets
/// `error` (position-annotated) if provided; `out` is left unspecified.
bool json_parse(const std::string& text, JsonValue& out,
                std::string* error = nullptr);

/// As above with explicit limits/policies (see JsonParseOptions).
bool json_parse(const std::string& text, JsonValue& out,
                const JsonParseOptions& options, std::string* error = nullptr);

/// True when `text` is a single well-formed JSON document.
bool json_valid(const std::string& text, std::string* error = nullptr);

}  // namespace mheta::obs
