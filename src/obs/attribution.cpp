#include "obs/attribution.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace mheta::obs {

int cost_term_index(mpi::Op op) {
  switch (op) {
    case mpi::Op::kCompute: return 0;
    case mpi::Op::kFileRead:
    case mpi::Op::kFileIread: return 1;  // the issue is synchronous disk work
    case mpi::Op::kFileWrite: return 2;
    case mpi::Op::kFileWait: return 3;  // unhidden prefetch latency L_e
    case mpi::Op::kSend: return 4;
    case mpi::Op::kRecv: return 5;  // blocking until arrival, plus o_r
    case mpi::Op::kAllreduce:
    case mpi::Op::kAlltoall:
    case mpi::Op::kBarrier: return 6;
    default: return -1;  // structural markers carry no time
  }
}

namespace {

void add_term(core::CostTerms& t, int term, double seconds) {
  switch (term) {
    case 0: t.compute_s += seconds; break;
    case 1: t.file_read_s += seconds; break;
    case 2: t.file_write_s += seconds; break;
    case 3: t.prefetch_wait_s += seconds; break;
    case 4: t.send_s += seconds; break;
    case 5: t.recv_wait_s += seconds; break;
    case 6: t.collective_s += seconds; break;
    default: break;
  }
}

std::string signed_fmt(double v, int precision) {
  return (v >= 0 ? "+" : "") + fmt(v, precision);
}

}  // namespace

std::vector<std::vector<core::CostTerms>> attribute_trace(
    const instrument::TraceCollector& trace,
    const core::ProgramStructure& program, int ranks, double origin_s) {
  std::unordered_map<int, std::size_t> section_index;
  for (std::size_t i = 0; i < program.sections.size(); ++i)
    section_index.emplace(program.sections[i].id, i);

  std::vector<std::vector<core::CostTerms>> terms(
      program.sections.size(),
      std::vector<core::CostTerms>(static_cast<std::size_t>(ranks)));
  for (const auto& e : trace.events()) {
    if (e.end_s <= origin_s) continue;  // untimed load phase
    const int term = cost_term_index(e.op);
    if (term < 0) continue;
    const auto it = section_index.find(e.section);
    if (it == section_index.end()) continue;  // outside any known section
    MHETA_CHECK(e.rank >= 0 && e.rank < ranks);
    // Clip events straddling the origin (none in practice: the timed region
    // starts with all ranks idle).
    const double begin = std::max(e.begin_s, origin_s);
    add_term(terms[it->second][static_cast<std::size_t>(e.rank)], term,
             e.end_s - begin);
  }
  return terms;
}

core::CostTerms AttributionReport::predicted_node_total(int rank) const {
  core::CostTerms out;
  for (const auto& section : predicted)
    out += section[static_cast<std::size_t>(rank)];
  return out;
}

core::CostTerms AttributionReport::actual_node_total(int rank) const {
  core::CostTerms out;
  for (const auto& section : actual)
    out += section[static_cast<std::size_t>(rank)];
  return out;
}

double AttributionReport::pct_diff() const {
  const double lo = std::min(actual_total_s, predicted_total_s);
  if (lo <= 0) return 0;
  return std::abs(actual_total_s - predicted_total_s) / lo;
}

void write_attribution_text(std::ostream& os, const AttributionReport& r) {
  os << "prediction-error attribution: " << r.workload << " on " << r.arch
     << " (dist " << r.dist << ", " << r.iterations << " iteration"
     << (r.iterations == 1 ? "" : "s") << ", " << r.nodes() << " nodes)\n"
     << "predicted " << fmt(r.predicted_total_s, 6) << " s   actual "
     << fmt(r.actual_total_s, 6) << " s   error "
     << signed_fmt(r.actual_total_s - r.predicted_total_s, 6) << " s ("
     << fmt_pct(r.pct_diff()) << ")\n";

  for (int rank = 0; rank < r.nodes(); ++rank) {
    const core::CostTerms pred = r.predicted_node_total(rank);
    const core::CostTerms act = r.actual_node_total(rank);
    os << "\nnode " << rank << "  (end: predicted "
       << fmt(r.predicted_node_end_s[static_cast<std::size_t>(rank)], 6)
       << " s, actual "
       << fmt(r.actual_node_end_s[static_cast<std::size_t>(rank)], 6)
       << " s)\n";
    Table t({"term", "predicted (s)", "actual (s)", "error (s)"});
    for (int term = 0; term < core::kCostTermCount; ++term) {
      const double p = core::cost_term_value(pred, term);
      const double a = core::cost_term_value(act, term);
      t.add_row({core::cost_term_name(term), fmt(p, 6), fmt(a, 6),
                 signed_fmt(a - p, 6)});
    }
    t.add_separator();
    t.add_row({"total", fmt(pred.total(), 6), fmt(act.total(), 6),
               signed_fmt(act.total() - pred.total(), 6)});
    t.print(os);
  }
}

namespace {

void write_terms_json(std::ostream& os, const core::CostTerms& t) {
  os << '{';
  for (int term = 0; term < core::kCostTermCount; ++term) {
    if (term > 0) os << ", ";
    os << json_escape(core::cost_term_name(term)) << ": "
       << json_number(core::cost_term_value(t, term));
  }
  os << '}';
}

}  // namespace

void write_attribution_json(std::ostream& os, const AttributionReport& r) {
  os << "{\n  \"workload\": " << json_escape(r.workload)
     << ",\n  \"arch\": " << json_escape(r.arch)
     << ",\n  \"dist\": " << json_escape(r.dist)
     << ",\n  \"iterations\": " << r.iterations
     << ",\n  \"predicted_total_s\": " << json_number(r.predicted_total_s)
     << ",\n  \"actual_total_s\": " << json_number(r.actual_total_s)
     << ",\n  \"pct_diff\": " << json_number(r.pct_diff())
     << ",\n  \"nodes\": [";
  for (int rank = 0; rank < r.nodes(); ++rank) {
    if (rank > 0) os << ',';
    os << "\n    {\"rank\": " << rank << ", \"predicted_end_s\": "
       << json_number(r.predicted_node_end_s[static_cast<std::size_t>(rank)])
       << ", \"actual_end_s\": "
       << json_number(r.actual_node_end_s[static_cast<std::size_t>(rank)])
       << ",\n     \"predicted\": ";
    write_terms_json(os, r.predicted_node_total(rank));
    os << ",\n     \"actual\": ";
    write_terms_json(os, r.actual_node_total(rank));
    os << "}";
  }
  os << "\n  ],\n  \"sections\": [";
  for (std::size_t si = 0; si < r.predicted.size(); ++si) {
    if (si > 0) os << ',';
    os << "\n    {\"id\": " << r.section_ids[si] << ", \"nodes\": [";
    for (std::size_t rank = 0; rank < r.predicted[si].size(); ++rank) {
      if (rank > 0) os << ", ";
      os << "{\"rank\": " << rank << ", \"predicted\": ";
      write_terms_json(os, r.predicted[si][rank]);
      os << ", \"actual\": ";
      write_terms_json(os, r.actual[si][rank]);
      os << '}';
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace mheta::obs
