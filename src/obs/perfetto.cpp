#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace mheta::obs {

const char* chrome_trace_category(mpi::Op op) {
  switch (op) {
    case mpi::Op::kCompute: return "compute";
    case mpi::Op::kFileRead:
    case mpi::Op::kFileWrite:
    case mpi::Op::kFileIread:
    case mpi::Op::kFileWait: return "io";
    case mpi::Op::kSend:
    case mpi::Op::kRecv: return "comm";
    case mpi::Op::kAllreduce:
    case mpi::Op::kAlltoall:
    case mpi::Op::kBarrier: return "collective";
    default: return "marker";
  }
}

namespace {

double to_us(double seconds) { return seconds * 1e6; }

bool is_file_op(mpi::Op op) {
  return op == mpi::Op::kFileRead || op == mpi::Op::kFileWrite ||
         op == mpi::Op::kFileIread || op == mpi::Op::kFileWait;
}

/// One "X" slice per completed operation.
void write_slice(std::ostream& os, const instrument::TraceEvent& e,
                 double origin_s, bool& first) {
  const double begin = std::max(e.begin_s - origin_s, 0.0);
  const double end = std::max(e.end_s - origin_s, begin);
  std::string name = mpi::to_string(e.op);
  if (!e.var.empty()) name += " " + e.var;
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": " << json_escape(name) << ", \"cat\": \""
     << chrome_trace_category(e.op) << "\", \"ph\": \"X\", \"ts\": "
     << json_number(to_us(begin)) << ", \"dur\": "
     << json_number(to_us(end - begin)) << ", \"pid\": 0, \"tid\": " << e.rank
     << ", \"args\": {\"bytes\": " << e.bytes << ", \"peer\": " << e.peer
     << ", \"section\": " << e.section << ", \"tile\": " << e.tile
     << ", \"stage\": " << e.stage;
  if (!e.var.empty()) os << ", \"var\": " << json_escape(e.var);
  os << "}}";
}

void write_counter(std::ostream& os, const std::string& name, int rank,
                   double ts_us, const char* series, double value,
                   bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": " << json_escape(name)
     << ", \"ph\": \"C\", \"ts\": " << json_number(ts_us)
     << ", \"pid\": 0, \"tid\": " << rank << ", \"args\": {\"" << series
     << "\": " << json_number(value) << "}}";
}

void write_metadata(std::ostream& os, const char* what, int tid,
                    const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": \"" << what << "\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
     << tid << ", \"args\": {\"name\": " << json_escape(name) << "}}";
}

/// One half of a flow arrow. The start (ph "s") binds to the slice
/// enclosing its timestamp on the sender's track; the finish (ph "f" with
/// bp "e") binds to the end of the enclosing recv slice.
void write_flow(std::ostream& os, const char* ph, int id, double ts_us,
                int rank, bool finish, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\": \"msg\", \"cat\": \"flow\", \"ph\": \"" << ph
     << "\", \"id\": " << id << ", \"ts\": " << json_number(ts_us)
     << ", \"pid\": 0, \"tid\": " << rank;
  if (finish) os << ", \"bp\": \"e\"";
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const instrument::TraceCollector& trace, int ranks,
                        const ChromeTraceOptions& opts) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;

  write_metadata(os, "process_name", 0, opts.process_name, first);
  for (int r = 0; r < ranks; ++r)
    write_metadata(os, "thread_name", r, "rank " + std::to_string(r), first);

  for (int r = 0; r < ranks; ++r) {
    const auto events = trace.rank_events(r);

    // Slice track: one complete event per operation, in begin order.
    for (const auto& e : events) {
      if (e.end_s - opts.origin_s < 0) continue;  // untimed load phase
      write_slice(os, e, opts.origin_s, first);
    }

    if (!opts.counter_tracks) continue;

    // Counter tracks. Cumulative disk bytes step up at each file-op end;
    // the cpu-active wave is 1 inside compute slices and 0 between them.
    // Counter samples must be time-ordered, so collect and sort the sample
    // points (ends for bytes; begin+end pairs for the wave).
    struct Sample {
      double ts_us;
      int which;  // 0 = disk bytes, 1 = cpu active
      double value;
    };
    std::vector<Sample> samples;
    std::int64_t disk_bytes = 0;
    for (const auto& e : events) {
      if (e.end_s - opts.origin_s < 0) continue;
      const double begin = to_us(std::max(e.begin_s - opts.origin_s, 0.0));
      const double end = to_us(std::max(e.end_s - opts.origin_s, 0.0));
      if (is_file_op(e.op)) {
        disk_bytes += e.bytes;
        samples.push_back({end, 0, static_cast<double>(disk_bytes)});
      } else if (e.op == mpi::Op::kCompute) {
        samples.push_back({begin, 1, 1.0});
        samples.push_back({end, 1, 0.0});
      }
    }
    std::stable_sort(samples.begin(), samples.end(),
                     [](const Sample& a, const Sample& b) {
                       return a.ts_us < b.ts_us;
                     });
    const std::string disk_name = "rank " + std::to_string(r) + " disk bytes";
    const std::string cpu_name = "rank " + std::to_string(r) + " cpu active";
    for (const auto& s : samples) {
      if (s.which == 0)
        write_counter(os, disk_name, r, s.ts_us, "bytes", s.value, first);
      else
        write_counter(os, cpu_name, r, s.ts_us, "active", s.value, first);
    }
  }

  if (opts.flow_events) {
    // FIFO-match sends to recvs per (sender, receiver) channel. Each rank's
    // event list is in begin order, so pushing in list order preserves the
    // simulator's per-channel message order; the k-th send on a channel
    // pairs with the k-th recv.
    struct FlowEnd {
      double begin_us;
      double end_us;
      int rank;
    };
    std::map<std::pair<int, int>, std::vector<FlowEnd>> sends;
    std::map<std::pair<int, int>, std::vector<FlowEnd>> recvs;
    for (int r = 0; r < ranks; ++r) {
      for (const auto& e : trace.rank_events(r)) {
        if (e.end_s - opts.origin_s < 0) continue;
        if (e.op != mpi::Op::kSend && e.op != mpi::Op::kRecv) continue;
        FlowEnd end;
        end.begin_us = to_us(std::max(e.begin_s - opts.origin_s, 0.0));
        end.end_us = to_us(std::max(e.end_s - opts.origin_s, 0.0));
        end.rank = r;
        if (e.op == mpi::Op::kSend)
          sends[{r, e.peer}].push_back(end);
        else
          recvs[{e.peer, r}].push_back(end);
      }
    }
    int id = 0;
    for (const auto& [channel, s] : sends) {
      const auto it = recvs.find(channel);
      if (it == recvs.end()) continue;
      const std::size_t pairs = std::min(s.size(), it->second.size());
      for (std::size_t k = 0; k < pairs; ++k) {
        write_flow(os, "s", id, s[k].begin_us, s[k].rank, false, first);
        write_flow(os, "f", id, it->second[k].end_us, it->second[k].rank,
                   true, first);
        ++id;
      }
    }
  }

  os << "\n  ]\n}\n";
}

}  // namespace mheta::obs
