// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The observability backbone (ISSUE 4): hot paths — the objective cache, the
// predictor's plan LRU, the thread pool, the simulated world — carry an
// optional `MetricsRegistry*` and update metrics only when one is installed,
// so an uninstrumented run pays a single null check per site. Metric update
// operations are lock-free (relaxed atomics); metric *creation* takes the
// registry mutex and returns a stable pointer callers cache once.
//
// Exporters: `export_json` (machine-readable snapshot, one object keyed by
// metric name) and `export_prometheus` (text exposition format 0.0.4).
//
// This header sits below util in the layering (it depends only on the
// standard library) so even util::ThreadPool can report into it.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mheta::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (utilization, queue depth, seconds).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with quantile estimation.
///
/// Buckets are cumulative-upper-bound style (as in Prometheus): bucket i
/// counts observations <= bounds[i]; one implicit +Inf bucket catches the
/// rest. Quantiles are estimated by linear interpolation inside the bucket
/// that crosses the requested rank (exact at bucket boundaries, which is
/// what the pinned tests rely on).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Quantile estimate for q in [0,1]; 0 when empty. p50/p95/p99 helpers.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts, including the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe registry of named metrics.
///
/// Names follow the Prometheus convention (`snake_case`, unit-suffixed:
/// `_total`, `_seconds`, `_ratio`). The registry owns its metrics; pointers
/// returned by the accessors stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. A name refers to
  /// one kind of metric for the registry's lifetime; asking for an existing
  /// name with a different kind throws.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `bounds` are only used on first creation; they must be ascending.
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Default latency bounds (seconds): 1us .. 10s, log-spaced-ish.
  static std::vector<double> default_time_bounds();

  /// JSON snapshot: {"name": {"type": ..., "value"/"count"/...}, ...}.
  void export_json(std::ostream& os) const;

  /// Prometheus text exposition format.
  void export_prometheus(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, Kind kind,
                        const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  // ordered -> stable export order
};

}  // namespace mheta::obs
