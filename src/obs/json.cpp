#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mheta::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

void serialize_into(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      out += json_number(v.number);
      break;
    case JsonValue::Kind::kString:
      out += json_escape(v.string);
      break;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& element : v.array) {
        if (!first) out.push_back(',');
        first = false;
        serialize_into(element, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.object) {
        if (!first) out.push_back(',');
        first = false;
        out += json_escape(key);
        out.push_back(':');
        serialize_into(member, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& v) {
  std::string out;
  serialize_into(v, out);
  return out;
}

namespace {

/// Recursive-descent RFC 8259 parser over a string view of the input.
class Parser {
 public:
  Parser(const std::string& text, const JsonParseOptions& options,
         std::string* error)
      : text_(text), options_(options), error_(error) {}

  bool parse(JsonValue& out) {
    if (options_.max_bytes > 0 && text_.size() > options_.max_bytes)
      return fail("document exceeds " + std::to_string(options_.max_bytes) +
                  " bytes");
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:

  bool fail(const std::string& what) {
    if (error_ != nullptr)
      *error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > options_.max_depth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      if (options_.reject_duplicate_keys &&
          out.object.find(key) != out.object.end())
        return fail("duplicate object key \"" + key + "\"");
      out.object[key] = std::move(member);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue element;
      if (!value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // Encode the code point as UTF-8; surrogate pairs are passed
            // through as their individual halves (sufficient for validation).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return fail("invalid escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      return fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return fail("invalid fraction");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return fail("invalid exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(text_.c_str() + start, nullptr);
    if (options_.reject_nonfinite_numbers && !std::isfinite(out.number))
      return fail("number overflows double");
    return true;
  }

  const std::string& text_;
  const JsonParseOptions& options_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string* error) {
  return json_parse(text, out, JsonParseOptions{}, error);
}

bool json_parse(const std::string& text, JsonValue& out,
                const JsonParseOptions& options, std::string* error) {
  return Parser(text, options, error).parse(out);
}

bool json_valid(const std::string& text, std::string* error) {
  JsonValue ignored;
  return json_parse(text, ignored, error);
}

}  // namespace mheta::obs
