#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <tuple>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace mheta::obs {

BlameReport build_blame(const core::Predictor& predictor,
                        const core::SweepTrace& trace) {
  const auto& sections = predictor.structure().sections;
  BlameReport r;
  r.iterations = trace.iterations;
  r.total_s = trace.prediction.total_s;
  r.critical_rank = trace.critical_rank();

  const std::vector<int> path = trace.critical_path();
  r.path_events = static_cast<int>(path.size());
  r.iteration_term_s.assign(static_cast<std::size_t>(trace.iterations), {});
  r.iteration_end_s.assign(static_cast<std::size_t>(trace.iterations), 0.0);

  // (rank, section id, stage id, term) -> on-path seconds; (src, dst,
  // section id) -> hop count and wire time. std::map keeps the fold
  // deterministic before the final sort.
  std::map<std::tuple<int, int, int, int>, double> cells;
  std::map<std::tuple<int, int, int>, std::pair<int, double>> edges;

  auto charge = [&](int rank, int section_id, int stage_id, int term,
                    double seconds, int iteration) {
    if (seconds == 0) return;
    cells[{rank, section_id, stage_id, term}] += seconds;
    r.path_seconds += seconds;
    r.term_s[static_cast<std::size_t>(term)] += seconds;
    if (iteration >= 0)
      r.iteration_term_s[static_cast<std::size_t>(iteration)]
                        [static_cast<std::size_t>(term)] += seconds;
  };

  for (const int ei : path) {
    const core::SweepEvent& e = trace.events[static_cast<std::size_t>(ei)];
    const auto& section =
        sections[static_cast<std::size_t>(e.section_index)];
    if (e.iteration >= 0) {
      auto& end = r.iteration_end_s[static_cast<std::size_t>(e.iteration)];
      end = std::max(end, e.t_end);
    }
    if (e.kind == core::SweepEvent::Kind::kStages) {
      // Split the stage run across its per-slot terms; the slots sum to the
      // event's duration within floating summation error.
      for (int g = 0; g < e.stage_count; ++g) {
        const core::CostTerms& ct =
            trace.terms[static_cast<std::size_t>(e.section_index)]
                       [static_cast<std::size_t>(e.slot_begin + g)];
        const int stage_id = section.stages[static_cast<std::size_t>(g)].id;
        for (int term = 0; term < core::kCostTermCount; ++term)
          charge(e.rank, section.id, stage_id, term,
                 core::cost_term_value(ct, term), e.iteration);
      }
    } else {
      // Communication advances: the full causal cost of the event — its
      // duration plus the wire time back to its remote predecessor — lands
      // in one term at section level (no single stage owns it).
      charge(e.rank, section.id, -1, e.term, e.duration_s() + e.edge_s,
             e.iteration);
      if (e.edge_s > 0 && e.src_rank >= 0) {
        auto& agg = edges[{e.src_rank, e.rank, section.id}];
        agg.first += 1;
        agg.second += e.edge_s;
      }
    }
  }

  for (const auto& [key, seconds] : cells) {
    BlameCell c;
    std::tie(c.rank, c.section_id, c.stage_id, c.term) = key;
    c.seconds = seconds;
    c.pct = r.path_seconds > 0 ? 100.0 * seconds / r.path_seconds : 0;
    r.cells.push_back(c);
  }
  std::stable_sort(r.cells.begin(), r.cells.end(),
                   [](const BlameCell& a, const BlameCell& b) {
                     return a.seconds > b.seconds;
                   });
  for (const auto& [key, agg] : edges) {
    BlameEdge e;
    std::tie(e.src, e.dst, e.section_id) = key;
    e.hops = agg.first;
    e.transfer_s = agg.second;
    r.edges.push_back(e);
  }
  std::stable_sort(r.edges.begin(), r.edges.end(),
                   [](const BlameEdge& a, const BlameEdge& b) {
                     return a.transfer_s > b.transfer_s;
                   });
  return r;
}

SensitivityReport what_if_sensitivity(const core::Predictor& predictor,
                                      const dist::GenBlock& d, int iterations,
                                      const BlameReport& blame,
                                      double epsilon) {
  MHETA_CHECK(epsilon > 0 && epsilon < 1);
  SensitivityReport out;
  out.epsilon = epsilon;
  out.base_total_s = predictor.predict(d, iterations).total_s;
  const double factor = 1.0 - epsilon;
  const int n = predictor.params().node_count();

  // First-order inputs from the blame report: per-rank on-path compute and
  // disk seconds, and the path's network hops split into a latency portion
  // (one latency per hop) and the remainder (the bandwidth portion).
  std::vector<double> compute_s(static_cast<std::size_t>(n), 0.0);
  std::vector<double> disk_s(static_cast<std::size_t>(n), 0.0);
  for (const auto& c : blame.cells) {
    if (c.rank < 0 || c.rank >= n) continue;
    if (c.term == 0) compute_s[static_cast<std::size_t>(c.rank)] += c.seconds;
    if (c.term == 1 || c.term == 2 || c.term == 3)
      disk_s[static_cast<std::size_t>(c.rank)] += c.seconds;
  }
  int hops = 0;
  double wire_s = 0;
  for (const auto& e : blame.edges) {
    hops += e.hops;
    wire_s += e.transfer_s;
  }
  const double latency_portion_s =
      static_cast<double>(hops) * predictor.params().network.latency_s;
  const double bandwidth_portion_s = wire_s - latency_portion_s;

  auto evaluate = [&](core::Perturbation::Kind kind, int rank,
                      double first_order_base) {
    core::Perturbation p;
    p.kind = kind;
    p.rank = rank;
    p.factor = factor;
    WhatIfEntry e;
    e.kind = kind;
    e.rank = rank;
    e.factor = factor;
    // Exact replay: perturbed tables on a Predictor copy, same sweep.
    e.replay_s = predictor.perturbed(p).predict(d, iterations).total_s;
    // Brute force: a fresh Predictor built from the perturbed params (full
    // construction path, lint included). Must agree with the replay.
    const core::Predictor brute(predictor.structure(),
                                core::perturb_params(predictor.params(), p),
                                predictor.memory_bytes(),
                                predictor.options());
    e.brute_s = brute.predict(d, iterations).total_s;
    e.delta_s = e.replay_s - out.base_total_s;
    e.first_order_s = (factor - 1.0) * first_order_base;
    out.max_replay_vs_brute_s = std::max(out.max_replay_vs_brute_s,
                                         std::abs(e.replay_s - e.brute_s));
    out.entries.push_back(e);
  };

  for (int rank = 0; rank < n; ++rank)
    evaluate(core::Perturbation::Kind::kCompute, rank,
             compute_s[static_cast<std::size_t>(rank)]);
  for (int rank = 0; rank < n; ++rank)
    evaluate(core::Perturbation::Kind::kDisk, rank,
             disk_s[static_cast<std::size_t>(rank)]);
  evaluate(core::Perturbation::Kind::kNetLatency, -1, latency_portion_s);
  evaluate(core::Perturbation::Kind::kNetBandwidth, -1, bandwidth_portion_s);

  std::stable_sort(out.entries.begin(), out.entries.end(),
                   [](const WhatIfEntry& a, const WhatIfEntry& b) {
                     return a.delta_s < b.delta_s;
                   });
  return out;
}

void write_blame_text(std::ostream& os, const BlameReport& r) {
  os << "critical path";
  if (!r.workload.empty())
    os << " (" << r.workload << " on " << r.arch << ", " << r.dist << ")";
  os << ": " << r.iterations << " iteration(s), total " << r.total_s
     << " s\n  path " << r.path_seconds << " s over " << r.path_events
     << " events, critical rank " << r.critical_rank << "\n  terms:";
  for (int term = 0; term < core::kCostTermCount; ++term) {
    const double s = r.term_s[static_cast<std::size_t>(term)];
    if (s == 0) continue;
    os << "  " << core::cost_term_name(term) << " "
       << (r.path_seconds > 0 ? 100.0 * s / r.path_seconds : 0) << "%";
  }
  os << "\n  residency (top cells):\n";
  const std::size_t top = std::min<std::size_t>(r.cells.size(), 12);
  for (std::size_t i = 0; i < top; ++i) {
    const BlameCell& c = r.cells[i];
    os << "    rank " << c.rank << " section " << c.section_id;
    if (c.stage_id >= 0)
      os << " stage " << c.stage_id;
    else
      os << " (comm)";
    os << " " << core::cost_term_name(c.term) << ": " << c.seconds << " s ("
       << c.pct << "%)\n";
  }
  if (!r.edges.empty()) {
    os << "  comm edges on path:\n";
    for (const BlameEdge& e : r.edges)
      os << "    " << e.src << " -> " << e.dst << " section " << e.section_id
         << ": " << e.hops << " hop(s), " << e.transfer_s << " s wire\n";
  }
}

void write_sensitivity_text(std::ostream& os, const SensitivityReport& r) {
  os << "what-if sensitivity (factor " << (1.0 - r.epsilon) << ", base "
     << r.base_total_s << " s, max replay-vs-brute "
     << r.max_replay_vs_brute_s << " s):\n";
  for (const WhatIfEntry& e : r.entries) {
    os << "    " << core::perturbation_kind_name(e.kind);
    if (e.rank >= 0) os << " node " << e.rank;
    os << ": delta " << e.delta_s << " s (first-order " << e.first_order_s
       << " s)\n";
  }
}

namespace {

void write_terms_object(std::ostream& os,
                        const std::array<double, core::kCostTermCount>& terms) {
  os << "{";
  for (int term = 0; term < core::kCostTermCount; ++term) {
    if (term > 0) os << ", ";
    os << json_escape(core::cost_term_name(term)) << ": "
       << json_number(terms[static_cast<std::size_t>(term)]);
  }
  os << "}";
}

}  // namespace

void write_critical_path_json(std::ostream& os, const BlameReport& r,
                              const SensitivityReport* sensitivity) {
  os << "{\n  \"workload\": " << json_escape(r.workload)
     << ",\n  \"arch\": " << json_escape(r.arch)
     << ",\n  \"dist\": " << json_escape(r.dist)
     << ",\n  \"iterations\": " << r.iterations
     << ",\n  \"total_s\": " << json_number(r.total_s)
     << ",\n  \"path_seconds\": " << json_number(r.path_seconds)
     << ",\n  \"critical_rank\": " << r.critical_rank
     << ",\n  \"path_events\": " << r.path_events << ",\n  \"term_s\": ";
  write_terms_object(os, r.term_s);
  os << ",\n  \"cells\": [";
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const BlameCell& c = r.cells[i];
    os << (i > 0 ? ",\n    " : "\n    ") << "{\"rank\": " << c.rank
       << ", \"section\": " << c.section_id << ", \"stage\": " << c.stage_id
       << ", \"term\": " << json_escape(core::cost_term_name(c.term))
       << ", \"seconds\": " << json_number(c.seconds)
       << ", \"pct\": " << json_number(c.pct) << "}";
  }
  os << "\n  ],\n  \"edges\": [";
  for (std::size_t i = 0; i < r.edges.size(); ++i) {
    const BlameEdge& e = r.edges[i];
    os << (i > 0 ? ",\n    " : "\n    ") << "{\"src\": " << e.src
       << ", \"dst\": " << e.dst << ", \"section\": " << e.section_id
       << ", \"hops\": " << e.hops
       << ", \"transfer_s\": " << json_number(e.transfer_s) << "}";
  }
  os << "\n  ],\n  \"iterations_path\": [";
  for (std::size_t it = 0; it < r.iteration_term_s.size(); ++it) {
    os << (it > 0 ? ",\n    " : "\n    ") << "{\"iteration\": " << it
       << ", \"end_s\": "
       << json_number(r.iteration_end_s[it]) << ", \"term_s\": ";
    write_terms_object(os, r.iteration_term_s[it]);
    os << "}";
  }
  os << "\n  ]";
  if (sensitivity != nullptr) {
    const SensitivityReport& s = *sensitivity;
    os << ",\n  \"sensitivity\": {\n    \"epsilon\": "
       << json_number(s.epsilon)
       << ",\n    \"base_total_s\": " << json_number(s.base_total_s)
       << ",\n    \"max_replay_vs_brute_s\": "
       << json_number(s.max_replay_vs_brute_s) << ",\n    \"entries\": [";
    for (std::size_t i = 0; i < s.entries.size(); ++i) {
      const WhatIfEntry& e = s.entries[i];
      os << (i > 0 ? ",\n      " : "\n      ") << "{\"parameter\": "
         << json_escape(core::perturbation_kind_name(e.kind))
         << ", \"node\": " << e.rank
         << ", \"factor\": " << json_number(e.factor)
         << ", \"replay_s\": " << json_number(e.replay_s)
         << ", \"brute_s\": " << json_number(e.brute_s)
         << ", \"delta_s\": " << json_number(e.delta_s)
         << ", \"first_order_s\": " << json_number(e.first_order_s) << "}";
    }
    os << "\n    ]\n  }";
  }
  os << "\n}\n";
}

void write_critical_path_trace(std::ostream& os, const BlameReport& r) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n"
     << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
     << "\"tid\": 0, \"args\": {\"name\": \"mheta critical path\"}}";
  // One multi-series counter sample per iteration, at the predicted time
  // the iteration's last on-path event ends: a stacked view of which cost
  // terms the critical path spent that iteration on.
  for (std::size_t it = 0; it < r.iteration_term_s.size(); ++it) {
    os << ",\n    {\"name\": \"critical path terms (s)\", \"ph\": \"C\", "
       << "\"ts\": " << json_number(r.iteration_end_s[it] * 1e6)
       << ", \"pid\": 0, \"tid\": 0, \"args\": ";
    write_terms_object(os, r.iteration_term_s[it]);
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace mheta::obs
