#include "obs/convergence.hpp"

#include <mutex>
#include <ostream>

namespace mheta::obs {

struct ConvergenceRecorder::State {
  mutable std::mutex mu;
  std::vector<Sample> samples;
};

ConvergenceRecorder::ConvergenceRecorder(search::Objective inner)
    : inner_(std::move(inner)), state_(std::make_shared<State>()) {}

double ConvergenceRecorder::operator()(const dist::GenBlock& d) const {
  const double cost = inner_(d);
  record(cost);
  return cost;
}

void ConvergenceRecorder::record(double cost) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  Sample s;
  s.evaluation = static_cast<int>(state_->samples.size()) + 1;
  s.cost = cost;
  s.best = state_->samples.empty()
               ? cost
               : std::min(cost, state_->samples.back().best);
  state_->samples.push_back(s);
}

std::vector<ConvergenceRecorder::Sample> ConvergenceRecorder::series() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->samples;
}

int ConvergenceRecorder::evaluations() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return static_cast<int>(state_->samples.size());
}

double ConvergenceRecorder::best() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->samples.empty() ? 0 : state_->samples.back().best;
}

void write_convergence_csv(std::ostream& os,
                           const std::vector<ConvergenceRecorder::Sample>& s) {
  os << "evaluation,cost,best\n";
  for (const auto& sample : s)
    os << sample.evaluation << ',' << sample.cost << ',' << sample.best
       << '\n';
}

}  // namespace mheta::obs
