// Causal critical-path blame and what-if sensitivity reports (ISSUE 9).
//
// build_blame() folds a core::SweepTrace (every clock advance of an
// evaluation with its causal predecessor — see core/critical.hpp) into the
// blame report: walk the critical rank's chain backwards and charge every
// second of it to a (node, section, stage, cost term) cell. Because the
// chain telescopes exactly, the cells sum to the headline prediction —
// residency percentages sum to 100% and the absolute seconds reproduce
// predict()'s total, both within 1e-9 (pinned in tests). Cross-rank hops on
// the path (a remote arrival that won a receive's max) are additionally
// aggregated into per-(src, dst) comm edges with their wire time.
//
// what_if_sensitivity() answers "what if this resource were ε faster":
// for every node's computation (C_i) and disk (S_i) and for the network's
// latency and bandwidth, the sweep is replayed with the parameter scaled by
// (1 - ε) — a Predictor copy with re-interned tables — and cross-checked
// against a brute-force re-prediction from a freshly constructed Predictor.
// The two must agree to 1e-9 (they are bit-identical by construction; the
// report carries the observed maximum). A first-order estimate from the
// blame report's on-path residencies is included for comparison — where it
// diverges from the exact delta, the path itself shifted.
//
// Rendering: a human-readable text table, a machine-readable JSON document
// (blame + sensitivity in one), and a Perfetto counter-track trace showing
// the per-iteration critical-path composition by cost term over predicted
// time.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/critical.hpp"
#include "core/model.hpp"
#include "dist/genblock.hpp"

namespace mheta::obs {

/// Critical-path residency of one (node, section, stage, term) cell.
struct BlameCell {
  int rank = -1;
  int section_id = -1;
  /// Program stage id; -1 for section-level communication (sends, receive
  /// waits, collective hops), which no single stage owns.
  int stage_id = -1;
  int term = -1;      ///< core::cost_term_name order
  double seconds = 0; ///< on-path residency
  double pct = 0;     ///< share of the path total (all cells sum to 100)
};

/// One aggregated cross-rank hop of the critical path.
struct BlameEdge {
  int src = -1;
  int dst = -1;
  int section_id = -1;
  int hops = 0;          ///< messages of this edge on the path
  double transfer_s = 0; ///< wire time they contributed to the makespan
};

/// Where the makespan's seconds live, cell by cell.
struct BlameReport {
  std::string workload;  // filled by the profiling caller; empty otherwise
  std::string arch;
  std::string dist;
  int iterations = 0;

  double total_s = 0;       ///< traced-sweep headline (== predict() to 1e-9)
  double path_seconds = 0;  ///< sum over cells (== total_s to 1e-9)
  int critical_rank = -1;
  int path_events = 0;

  /// Per-term on-path seconds (sum over cells of that term).
  std::array<double, core::kCostTermCount> term_s{};

  std::vector<BlameCell> cells;  ///< sorted by seconds, descending
  std::vector<BlameEdge> edges;  ///< sorted by transfer_s, descending

  /// Per-iteration slices of the path: term composition and the predicted
  /// time at which the iteration's last on-path event ends (the x-axis of
  /// the Perfetto counter tracks).
  std::vector<std::array<double, core::kCostTermCount>> iteration_term_s;
  std::vector<double> iteration_end_s;
};

/// Folds the traced sweep into the blame report. `predictor` resolves
/// section/stage indices to their program ids.
BlameReport build_blame(const core::Predictor& predictor,
                        const core::SweepTrace& trace);

/// One what-if entry: a resource scaled by `factor`, with the exact replay,
/// its brute-force cross-check, and the blame-derived first-order estimate.
struct WhatIfEntry {
  core::Perturbation::Kind kind = core::Perturbation::Kind::kCompute;
  int rank = -1;             ///< -1 for the network-wide parameters
  double factor = 1;         ///< applied multiplier (1 - epsilon)
  double replay_s = 0;       ///< perturbed-table replay of the sweep
  double brute_s = 0;        ///< fresh-Predictor re-prediction
  double delta_s = 0;        ///< replay_s - base total
  double first_order_s = 0;  ///< estimate from on-path blame residencies
};

struct SensitivityReport {
  double base_total_s = 0;
  double epsilon = 0;
  /// max |replay_s - brute_s| over all entries; pinned <= 1e-9 in tests.
  double max_replay_vs_brute_s = 0;
  std::vector<WhatIfEntry> entries;  ///< sorted by delta_s, ascending
};

/// Replays the sweep with each parameter shrunk by `epsilon` (factor
/// 1 - epsilon) and cross-checks every replay against brute-force
/// re-prediction. `blame` supplies the first-order estimates.
SensitivityReport what_if_sensitivity(const core::Predictor& predictor,
                                      const dist::GenBlock& d, int iterations,
                                      const BlameReport& blame,
                                      double epsilon = 0.1);

/// Human-readable blame table: headline, per-term residencies, top cells
/// and comm edges.
void write_blame_text(std::ostream& os, const BlameReport& r);

/// Human-readable what-if table: per entry the exact delta next to the
/// first-order estimate.
void write_sensitivity_text(std::ostream& os, const SensitivityReport& r);

/// Machine-readable rendering of blame (+ sensitivity when non-null) as one
/// JSON document.
void write_critical_path_json(std::ostream& os, const BlameReport& r,
                              const SensitivityReport* sensitivity = nullptr);

/// Chrome/Perfetto counter-track trace: one multi-series counter sampled at
/// each iteration's on-path end time, showing how the critical path's term
/// composition evolves over predicted time.
void write_critical_path_trace(std::ostream& os, const BlameReport& r);

}  // namespace mheta::obs
