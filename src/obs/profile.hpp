// One-stop profiling orchestration behind the `mheta-profile` tool.
//
// run_profile() takes one (workload, architecture, distribution) triple and
// produces every observability artifact of ISSUE 4 in one pass:
//   - an attributed prediction (core::Predictor::predict_attributed),
//   - a traced simulated run of the same triple (instrument::TraceCollector),
//   - the prediction-error attribution report comparing the two,
//   - a Perfetto/Chrome trace of the run,
//   - an ASCII Gantt chart,
//   - a metrics snapshot (objective/plan cache hit rates, per-node CPU and
//     disk utilization, shared-network utilization, simulator event count),
//   - optionally a search-convergence series when a search algorithm is
//     requested.
// All artifacts are written under `out_dir` (created if missing); the
// metrics exports are written last so they snapshot everything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/incremental.hpp"
#include "core/lanes.hpp"
#include "dist/generators.hpp"
#include "exp/experiment.hpp"
#include "obs/attribution.hpp"
#include "obs/convergence.hpp"
#include "obs/critical_path.hpp"
#include "obs/registry.hpp"
#include "search/objective.hpp"

namespace mheta::obs {

/// Distribution-generator lookup shared with the CLI: even|blk -> Blk,
/// bal -> Bal, ic -> I-C, icbal -> I-C/Bal. Throws on unknown names.
dist::GenBlock dist_by_name(const dist::DistContext& ctx,
                            const std::string& name);

struct ProfileOptions {
  std::string arch = "HY1";
  std::string dist = "even";
  /// 0 -> the workload's default iteration count.
  int iterations = 0;
  /// Empty -> no search pass. Otherwise one of
  /// tabu | gbs | anneal | genetic | random | hill.
  std::string search;
  std::uint64_t seed = 42;
  /// Trace the clock sweep and emit the causal critical-path blame and
  /// what-if sensitivity reports (plus, with a search pass, the blame of
  /// the search's incumbent). Off by default: the instrumented sweep and
  /// the incumbent probe are only constructed when this is set, so the
  /// delta/lane fast paths pay nothing otherwise.
  bool critical_path = false;
  /// Shrink factor for the what-if replays (parameter x (1 - epsilon)).
  double sensitivity_epsilon = 0.1;
  exp::ExperimentOptions experiment;
};

struct ProfileResult {
  AttributionReport report;

  // Cache effectiveness (also exported as gauges).
  double objective_cache_hit_rate = 0;
  double plan_cache_hit_rate = 0;

  // Resource utilization over the full simulated run, in [0, 1].
  std::vector<double> cpu_utilization;   // per node
  std::vector<double> disk_utilization;  // per node
  double network_utilization = 0;

  // Search pass (when ProfileOptions::search was set).
  bool searched = false;
  std::string search_algorithm;
  double search_best_s = 0;
  int search_evaluations = 0;
  std::vector<ConvergenceRecorder::Sample> convergence;
  /// Delta-evaluation counters from the search pass: the scalar path of the
  /// lane-batched objective the search scores candidates through (also
  /// exported as delta_eval_* metrics).
  core::DeltaStats delta;
  /// Lane-batch counters from the same search pass — population algorithms
  /// route whole candidate sets through K-wide clock sweeps (also exported
  /// as lane_eval_* metrics).
  core::LaneStats lanes;
  /// Certified branch-and-bound counters from the same search pass: the
  /// interval-bounds screen in front of the lane evaluator (also exported
  /// as bounds_* metrics).
  search::BoundedStats bounds;

  // Critical-path pass (when ProfileOptions::critical_path was set).
  bool critical = false;
  BlameReport blame;              ///< blame of the profiled distribution
  SensitivityReport sensitivity;  ///< what-if replays of the same triple
  /// Incumbent probe (critical_path together with a search pass): blame of
  /// the best distribution the search observed.
  bool has_incumbent = false;
  double incumbent_best_s = 0;
  std::size_t incumbent_observed = 0;
  std::size_t incumbent_improvements = 0;
  BlameReport incumbent_blame;

  /// Paths of every artifact written, in write order.
  std::vector<std::string> files;
};

/// Runs the full profile and writes the artifacts into `out_dir`.
/// `registry` (caller-owned) receives every metric and is exported into
/// `out_dir` at the end — pass a fresh registry for a self-contained
/// snapshot.
ProfileResult run_profile(const exp::Workload& w, const ProfileOptions& opts,
                          MetricsRegistry& registry,
                          const std::string& out_dir);

}  // namespace mheta::obs
