// SimMPI: a simulated message-passing runtime.
//
// World is the simulated analog of an MPI communicator plus MPI-IO: ranks
// are coroutine processes; send/recv/allreduce/barrier and file operations
// advance the simulated clock according to the cluster's network and disk
// models. All operations fire PMPI-style hooks (hooks.hpp) so the
// instrumentation layer can observe a run without touching application code.
//
// Timing semantics (paper §4.2.2, Figure 7):
//   send:  sender busy for o_s / C_src, message arrives at the receiver
//          o_s/C_src + transfer(bytes) after the send call;
//   recv:  receiver blocks until arrival, then busy for o_r / C_dst.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/disk.hpp"
#include "cluster/node.hpp"
#include "mpi/hooks.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/trigger.hpp"
#include "util/rng.hpp"

namespace mheta::mpi {

/// Reduction operators supported by allreduce.
enum class ReduceOp { kSum, kMax, kMin };

/// A point-to-point message (payload carries reduction partial values).
struct Msg {
  int src = -1;
  int tag = 0;
  std::int64_t bytes = 0;
  double payload = 0.0;
  sim::Time sent_at = 0;
};

/// Handle for an in-flight asynchronous read (prefetch).
struct Request {
  sim::TriggerPtr done;
  std::string var;
  std::int64_t bytes = 0;
  sim::Time issued_at = 0;
};

/// The simulated world: one instance per run.
class World {
 public:
  World(sim::Engine& engine, const cluster::ClusterConfig& config,
        const cluster::SimEffects& effects);

  int size() const { return config_.size(); }
  sim::Engine& engine() { return engine_; }
  const cluster::ClusterConfig& config() const { return config_; }
  const cluster::SimEffects& effects() const { return effects_; }
  cluster::DiskModel& disk(int rank);
  HookRegistry& hooks() { return hooks_; }

  // --- structural context markers (zero simulated cost) -----------------
  // The paper's preprocessor inserts these; the instrumentation layer uses
  // them to attribute costs to (section, tile, stage).
  void section_begin(int rank, int section);
  void section_end(int rank, int section);
  void tile_begin(int rank, int tile);
  void tile_end(int rank, int tile);
  void stage_begin(int rank, int stage);
  void stage_end(int rank, int stage);

  // --- computation -------------------------------------------------------
  /// Performs `work_seconds` of baseline-node computation on `rank`:
  /// simulated duration = work / C_rank, modulated by the CPU-cache
  /// perturbation (for the given working set) and runtime noise.
  sim::Task<void> compute(int rank, double work_seconds,
                          std::int64_t working_set_bytes = 0);

  // --- point-to-point ----------------------------------------------------
  /// Buffered send: the sender is busy for its o_s, then continues; the
  /// message is delivered transfer(bytes) later.
  sim::Task<void> send(int src, int dst, std::int64_t bytes, int tag = 0,
                       double payload = 0.0, const std::string& var = "");

  /// Blocking receive; returns the message after paying o_r.
  sim::Task<Msg> recv(int dst, int src, int tag = 0);

  // --- collectives (built from send/recv over a binomial tree) -----------
  sim::Task<double> allreduce(int rank, double value,
                              ReduceOp op = ReduceOp::kSum);
  sim::Task<void> barrier(int rank);

  /// Total exchange: every rank sends `bytes_per_pair` to every other rank
  /// (ring-shifted pairwise algorithm: at step s, send to rank+s, receive
  /// from rank-s). Inner messages are hidden from the hooks.
  sim::Task<void> alltoall(int rank, std::int64_t bytes_per_pair);

  // --- file I/O (local disk per rank) -------------------------------------
  sim::Task<void> file_read(int rank, const std::string& var,
                            std::int64_t offset, std::int64_t bytes);
  sim::Task<void> file_write(int rank, const std::string& var,
                             std::int64_t offset, std::int64_t bytes);

  /// Issues an asynchronous (prefetch) read. When the prefetch-
  /// instrumentation transform is active (paper Figure 5), the issue blocks
  /// like a synchronous read and the matching file_wait is a no-op.
  sim::Task<Request> file_iread(int rank, const std::string& var,
                                std::int64_t offset, std::int64_t bytes);

  /// Blocks until the asynchronous read completes.
  sim::Task<void> file_wait(int rank, Request req);

  /// Enables/disables the Figure-5 prefetch instrumentation transform.
  void set_blocking_prefetch(bool on) { blocking_prefetch_ = on; }
  bool blocking_prefetch() const { return blocking_prefetch_; }

  /// Effective send/recv overheads for a rank (seconds), after CPU scaling.
  double send_overhead_s(int rank) const;
  double recv_overhead_s(int rank) const;

  // --- live fault injection (mheta-adapt) ---------------------------------
  // These mutators let a fault::FaultInjector perturb the running world from
  // sim::Engine events without rebuilding it. All factors default to 1 and
  // cost nothing when untouched.

  /// Slows rank's CPU by `factor` (>= 1): compute durations and its o_s/o_r
  /// overheads stretch by the factor. 1.0 restores nominal speed.
  void set_cpu_factor(int rank, double factor);
  double cpu_factor(int rank) const;

  /// Scales every subsequent message's wire time (latency and per-byte) by
  /// `factor` (>= 1) — shared-network contention. 1.0 restores nominal.
  void set_network_factor(double factor);
  double network_factor() const { return network_factor_; }

  /// Freezes rank's CPU until now() + `seconds`: the next compute on that
  /// rank first waits out the stall (in-flight I/O and messages drain
  /// normally, like an OS-level pause). Overlapping stalls extend, never
  /// shorten.
  void stall(int rank, double seconds);
  sim::Time stalled_until(int rank) const;

  // --- utilization accounting (always on; plain double adds) --------------
  /// Seconds rank's CPU was busy: compute durations plus per-message
  /// send/recv overheads (collective-internal messages included).
  double cpu_busy_seconds(int rank) const;

  /// Sum of on-the-wire transfer times of every message (collective-internal
  /// messages included). Transfers may overlap, so divide by elapsed time
  /// and clamp for a shared-network utilization estimate.
  double network_busy_seconds() const { return network_busy_s_; }

 private:
  using ChannelKey = std::tuple<int, int, int>;  // (dst, src, tag)

  sim::Channel<Msg>& channel(int dst, int src, int tag);
  HookInfo info(int rank, Op op) const;
  void fire_pre(HookInfo i);
  void fire_post(HookInfo i);
  double power(int rank) const;

  /// Internal tags used by collectives; disjoint from application tags.
  static constexpr int kReduceTag = -101;
  static constexpr int kBcastTag = -102;
  static constexpr int kAlltoallTag = -103;

  struct RankState {
    int section = -1;
    int tile = -1;
    int stage = -1;
    bool suppress_hooks = false;  // hides collective-internal sends/recvs
  };

  sim::Engine& engine_;
  const cluster::ClusterConfig& config_;
  cluster::SimEffects effects_;
  HookRegistry hooks_;
  bool blocking_prefetch_ = false;
  double network_factor_ = 1.0;
  std::vector<double> cpu_factor_;      // per rank, >= 1
  std::vector<sim::Time> stall_until_;  // per rank
  std::vector<double> cpu_busy_s_;  // per rank
  double network_busy_s_ = 0;
  std::vector<std::unique_ptr<cluster::DiskModel>> disks_;
  std::vector<RankState> ranks_;
  std::vector<Rng> compute_rng_;
  std::map<ChannelKey, std::unique_ptr<sim::Channel<Msg>>> channels_;
};

}  // namespace mheta::mpi
