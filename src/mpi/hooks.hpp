// PMPI-style interposition (the MPI-Jack analog, paper §4.1, Figure 3).
//
// Every runtime operation fires a pre hook before it starts and a post hook
// after it completes. Hooks receive the operation's metadata plus the
// calling rank's current (parallel section, tile, stage) context — exactly
// the information the paper's MPI-Jack hooks extract — and are the only
// channel through which the instrumentation layer observes a run.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mheta::mpi {

/// Operation kinds visible to hooks.
enum class Op {
  kCompute,     // a timed computation burst
  kSend,        // point-to-point send (o_s side)
  kRecv,        // point-to-point receive (o_r side, includes blocking)
  kAllreduce,   // global reduction (inner messages are hidden)
  kAlltoall,    // total exchange (inner messages are hidden)
  kBarrier,     // synchronization barrier
  kFileRead,    // synchronous local-disk read
  kFileWrite,   // synchronous local-disk write
  kFileIread,   // asynchronous read issue (prefetch)
  kFileWait,    // wait for an asynchronous read
  kSectionBegin,
  kSectionEnd,
  kTileBegin,
  kTileEnd,
  kStageBegin,
  kStageEnd,
};

const char* to_string(Op op);

/// Metadata delivered to hooks.
struct HookInfo {
  int rank = 0;
  Op op = Op::kCompute;
  sim::Time now = 0;  ///< simulated time at hook invocation

  /// Variable (file) name for I/O ops; empty otherwise.
  std::string var;
  std::int64_t bytes = 0;
  int peer = -1;  ///< src/dst rank for point-to-point ops
  int tag = 0;

  /// The calling rank's current structural context (set by the markers).
  int section = -1;
  int tile = -1;
  int stage = -1;
};

using Hook = std::function<void(const HookInfo&)>;

/// Registry of pre/post hooks. Multiple hooks may be installed; they run in
/// installation order. An empty registry costs one branch per operation.
class HookRegistry {
 public:
  void add_pre(Hook h) { pre_.push_back(std::move(h)); }
  void add_post(Hook h) { post_.push_back(std::move(h)); }
  void clear() {
    pre_.clear();
    post_.clear();
  }
  bool empty() const { return pre_.empty() && post_.empty(); }

  void fire_pre(const HookInfo& info) const {
    for (const auto& h : pre_) h(info);
  }
  void fire_post(const HookInfo& info) const {
    for (const auto& h : post_) h(info);
  }

 private:
  std::vector<Hook> pre_;
  std::vector<Hook> post_;
};

}  // namespace mheta::mpi
