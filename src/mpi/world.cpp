#include "mpi/world.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mheta::mpi {

const char* to_string(Op op) {
  switch (op) {
    case Op::kCompute: return "compute";
    case Op::kSend: return "send";
    case Op::kRecv: return "recv";
    case Op::kAllreduce: return "allreduce";
    case Op::kAlltoall: return "alltoall";
    case Op::kBarrier: return "barrier";
    case Op::kFileRead: return "file_read";
    case Op::kFileWrite: return "file_write";
    case Op::kFileIread: return "file_iread";
    case Op::kFileWait: return "file_wait";
    case Op::kSectionBegin: return "section_begin";
    case Op::kSectionEnd: return "section_end";
    case Op::kTileBegin: return "tile_begin";
    case Op::kTileEnd: return "tile_end";
    case Op::kStageBegin: return "stage_begin";
    case Op::kStageEnd: return "stage_end";
  }
  return "?";
}

World::World(sim::Engine& engine, const cluster::ClusterConfig& config,
             const cluster::SimEffects& effects)
    : engine_(engine), config_(config), effects_(effects) {
  MHETA_CHECK(config.size() > 0);
  disks_.reserve(static_cast<std::size_t>(config.size()));
  ranks_.resize(static_cast<std::size_t>(config.size()));
  cpu_busy_s_.resize(static_cast<std::size_t>(config.size()), 0.0);
  cpu_factor_.resize(static_cast<std::size_t>(config.size()), 1.0);
  stall_until_.resize(static_cast<std::size_t>(config.size()), 0);
  for (int i = 0; i < config.size(); ++i) {
    disks_.push_back(std::make_unique<cluster::DiskModel>(
        engine_, config.node(i), effects_.file_cache));
    compute_rng_.emplace_back(effects_.seed,
                              0x1000u + static_cast<std::uint64_t>(i));
  }
}

cluster::DiskModel& World::disk(int rank) {
  MHETA_CHECK(rank >= 0 && rank < size());
  return *disks_[static_cast<std::size_t>(rank)];
}

double World::power(int rank) const {
  return config_.node(rank).cpu_power /
         cpu_factor_[static_cast<std::size_t>(rank)];
}

void World::set_cpu_factor(int rank, double factor) {
  MHETA_CHECK(rank >= 0 && rank < size());
  MHETA_CHECK_MSG(factor >= 1.0, "cpu slowdown must be >= 1, got " << factor);
  cpu_factor_[static_cast<std::size_t>(rank)] = factor;
}

double World::cpu_factor(int rank) const {
  MHETA_CHECK(rank >= 0 && rank < size());
  return cpu_factor_[static_cast<std::size_t>(rank)];
}

void World::set_network_factor(double factor) {
  MHETA_CHECK_MSG(factor >= 1.0,
                  "network contention factor must be >= 1, got " << factor);
  network_factor_ = factor;
}

void World::stall(int rank, double seconds) {
  MHETA_CHECK(rank >= 0 && rank < size());
  MHETA_CHECK(seconds >= 0);
  const sim::Time until = engine_.now() + sim::from_seconds(seconds);
  sim::Time& s = stall_until_[static_cast<std::size_t>(rank)];
  s = std::max(s, until);
}

sim::Time World::stalled_until(int rank) const {
  MHETA_CHECK(rank >= 0 && rank < size());
  return stall_until_[static_cast<std::size_t>(rank)];
}

double World::send_overhead_s(int rank) const {
  return config_.network.send_overhead_s / power(rank);
}

double World::recv_overhead_s(int rank) const {
  return config_.network.recv_overhead_s / power(rank);
}

double World::cpu_busy_seconds(int rank) const {
  MHETA_CHECK(rank >= 0 && rank < size());
  return cpu_busy_s_[static_cast<std::size_t>(rank)];
}

HookInfo World::info(int rank, Op op) const {
  MHETA_CHECK(rank >= 0 && rank < size());
  const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  HookInfo i;
  i.rank = rank;
  i.op = op;
  i.now = engine_.now();
  i.section = rs.section;
  i.tile = rs.tile;
  i.stage = rs.stage;
  return i;
}

void World::fire_pre(HookInfo i) {
  if (hooks_.empty()) return;
  if (ranks_[static_cast<std::size_t>(i.rank)].suppress_hooks) return;
  i.now = engine_.now();
  hooks_.fire_pre(i);
}

void World::fire_post(HookInfo i) {
  if (hooks_.empty()) return;
  if (ranks_[static_cast<std::size_t>(i.rank)].suppress_hooks) return;
  i.now = engine_.now();
  hooks_.fire_post(i);
}

void World::section_begin(int rank, int section) {
  ranks_[static_cast<std::size_t>(rank)].section = section;
  ranks_[static_cast<std::size_t>(rank)].tile = -1;
  ranks_[static_cast<std::size_t>(rank)].stage = -1;
  fire_pre(info(rank, Op::kSectionBegin));
}

void World::section_end(int rank, int section) {
  HookInfo i = info(rank, Op::kSectionEnd);
  i.section = section;
  fire_post(i);
  ranks_[static_cast<std::size_t>(rank)].section = -1;
}

void World::tile_begin(int rank, int tile) {
  ranks_[static_cast<std::size_t>(rank)].tile = tile;
  fire_pre(info(rank, Op::kTileBegin));
}

void World::tile_end(int rank, int tile) {
  HookInfo i = info(rank, Op::kTileEnd);
  i.tile = tile;
  fire_post(i);
  ranks_[static_cast<std::size_t>(rank)].tile = -1;
}

void World::stage_begin(int rank, int stage) {
  ranks_[static_cast<std::size_t>(rank)].stage = stage;
  fire_pre(info(rank, Op::kStageBegin));
}

void World::stage_end(int rank, int stage) {
  HookInfo i = info(rank, Op::kStageEnd);
  i.stage = stage;
  fire_post(i);
  ranks_[static_cast<std::size_t>(rank)].stage = -1;
}

sim::Task<void> World::compute(int rank, double work_seconds,
                               std::int64_t working_set_bytes) {
  MHETA_CHECK(work_seconds >= 0);
  HookInfo i = info(rank, Op::kCompute);
  fire_pre(i);
  // An injected stall (transient node pause) freezes the CPU: the next
  // compute waits it out. The wait is idle time, not busy time.
  const sim::Time stalled = stall_until_[static_cast<std::size_t>(rank)];
  if (stalled > engine_.now()) {
    co_await engine_.delay(stalled - engine_.now());
  }
  const double cache_factor = config_.cache.factor(
      working_set_bytes, effects_.cache_perturbation);
  const double noise = compute_rng_[static_cast<std::size_t>(rank)]
                           .noise_factor(effects_.runtime_noise_rel);
  const double duration = work_seconds / power(rank) * cache_factor * noise;
  cpu_busy_s_[static_cast<std::size_t>(rank)] += duration;
  co_await engine_.delay(sim::from_seconds(duration));
  fire_post(i);
}

sim::Channel<Msg>& World::channel(int dst, int src, int tag) {
  const ChannelKey key{dst, src, tag};
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_
             .emplace(key, std::make_unique<sim::Channel<Msg>>(engine_))
             .first;
  }
  return *it->second;
}

sim::Task<void> World::send(int src, int dst, std::int64_t bytes, int tag,
                            double payload, const std::string& var) {
  MHETA_CHECK(dst >= 0 && dst < size() && dst != src);
  MHETA_CHECK(bytes >= 0);
  HookInfo i = info(src, Op::kSend);
  i.peer = dst;
  i.bytes = bytes;
  i.tag = tag;
  i.var = var;
  fire_pre(i);
  // Sender CPU overhead o_s (scaled by CPU power), then the message is on
  // the wire for transfer(bytes).
  const double wire_s = config_.network.transfer_s(bytes) * network_factor_;
  cpu_busy_s_[static_cast<std::size_t>(src)] += send_overhead_s(src);
  network_busy_s_ += wire_s;
  co_await engine_.delay(sim::from_seconds(send_overhead_s(src)));
  Msg m;
  m.src = src;
  m.tag = tag;
  m.bytes = bytes;
  m.payload = payload;
  m.sent_at = engine_.now();
  const sim::Time arrival = engine_.now() + sim::from_seconds(wire_s);
  channel(dst, src, tag).push_at(arrival, m);
  fire_post(i);
}

sim::Task<Msg> World::recv(int dst, int src, int tag) {
  MHETA_CHECK(src >= 0 && src < size() && src != dst);
  HookInfo i = info(dst, Op::kRecv);
  i.peer = src;
  i.tag = tag;
  fire_pre(i);
  Msg m = co_await channel(dst, src, tag).recv();
  cpu_busy_s_[static_cast<std::size_t>(dst)] += recv_overhead_s(dst);
  co_await engine_.delay(sim::from_seconds(recv_overhead_s(dst)));
  i.bytes = m.bytes;
  fire_post(i);
  co_return m;
}

namespace {
double combine(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kMax: return std::max(a, b);
    case ReduceOp::kMin: return std::min(a, b);
  }
  return a;
}
}  // namespace

sim::Task<double> World::allreduce(int rank, double value, ReduceOp op) {
  // Binomial-tree reduce to rank 0, then binomial broadcast — the exact
  // tree the MHETA reduction model mirrors. Inner messages carry one
  // double (8 bytes); their hooks are suppressed so the instrumentation
  // sees a single kAllreduce operation.
  constexpr std::int64_t kReduceBytes = 8;
  HookInfo i = info(rank, Op::kAllreduce);
  i.bytes = kReduceBytes;
  fire_pre(i);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const bool was_suppressed = rs.suppress_hooks;
  rs.suppress_hooks = true;

  const int n = size();
  double acc = value;
  // Reduce phase.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rank & mask) != 0) {
      co_await send(rank, rank & ~mask, kReduceBytes, kReduceTag, acc);
      break;
    }
    const int partner = rank | mask;
    if (partner < n) {
      const Msg m = co_await recv(rank, partner, kReduceTag);
      acc = combine(op, acc, m.payload);
    }
  }
  // Broadcast phase (root 0).
  int mask = 1;
  while (mask < n) {
    if ((rank & mask) != 0) {
      const Msg m = co_await recv(rank, rank - mask, kBcastTag);
      acc = m.payload;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank + mask < n) {
      co_await send(rank, rank + mask, kReduceBytes, kBcastTag, acc);
    }
    mask >>= 1;
  }

  rs.suppress_hooks = was_suppressed;
  fire_post(i);
  co_return acc;
}

sim::Task<void> World::alltoall(int rank, std::int64_t bytes_per_pair) {
  MHETA_CHECK(bytes_per_pair >= 0);
  HookInfo i = info(rank, Op::kAlltoall);
  i.bytes = bytes_per_pair;
  fire_pre(i);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const bool was_suppressed = rs.suppress_hooks;
  rs.suppress_hooks = true;
  const int n = size();
  for (int s = 1; s < n; ++s) {
    const int to = (rank + s) % n;
    const int from = (rank + n - s) % n;
    co_await send(rank, to, bytes_per_pair, kAlltoallTag);
    (void)co_await recv(rank, from, kAlltoallTag);
  }
  rs.suppress_hooks = was_suppressed;
  fire_post(i);
}

sim::Task<void> World::barrier(int rank) {
  HookInfo i = info(rank, Op::kBarrier);
  fire_pre(i);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const bool was_suppressed = rs.suppress_hooks;
  rs.suppress_hooks = true;
  (void)co_await allreduce(rank, 0.0, ReduceOp::kSum);
  rs.suppress_hooks = was_suppressed;
  fire_post(i);
}

sim::Task<void> World::file_read(int rank, const std::string& var,
                                 std::int64_t offset, std::int64_t bytes) {
  HookInfo i = info(rank, Op::kFileRead);
  i.var = var;
  i.bytes = bytes;
  fire_pre(i);
  const sim::Time done = disk(rank).read(var, offset, bytes);
  co_await engine_.delay(done - engine_.now());
  fire_post(i);
}

sim::Task<void> World::file_write(int rank, const std::string& var,
                                  std::int64_t offset, std::int64_t bytes) {
  HookInfo i = info(rank, Op::kFileWrite);
  i.var = var;
  i.bytes = bytes;
  fire_pre(i);
  const sim::Time done = disk(rank).write(var, offset, bytes);
  co_await engine_.delay(done - engine_.now());
  fire_post(i);
}

sim::Task<Request> World::file_iread(int rank, const std::string& var,
                                     std::int64_t offset, std::int64_t bytes) {
  HookInfo i = info(rank, Op::kFileIread);
  i.var = var;
  i.bytes = bytes;
  fire_pre(i);
  Request req;
  req.var = var;
  req.bytes = bytes;
  req.issued_at = engine_.now();
  if (blocking_prefetch_) {
    // Figure 5 transform: the issue behaves like a synchronous read, so the
    // instrumented run can time read latency and overlap compute exactly.
    const sim::Time done = disk(rank).read(var, offset, bytes);
    co_await engine_.delay(done - engine_.now());
    req.done = sim::make_trigger(engine_);
    req.done->fire();
  } else {
    req.done = disk(rank).read_async(var, offset, bytes);
  }
  fire_post(i);
  co_return req;
}

sim::Task<void> World::file_wait(int rank, Request req) {
  HookInfo i = info(rank, Op::kFileWait);
  i.var = req.var;
  i.bytes = req.bytes;
  fire_pre(i);
  MHETA_CHECK_MSG(req.done != nullptr, "file_wait on an empty request");
  // Under the Figure-5 transform the request completed at issue time and
  // this wait is a no-op, exactly as the paper prescribes.
  co_await req.done->wait();
  fire_post(i);
}

}  // namespace mheta::mpi
