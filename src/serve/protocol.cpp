#include "serve/protocol.hpp"

#include <cmath>

#include "serve/ops.hpp"
#include "util/check.hpp"

namespace mheta::serve {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPredict: return "predict";
    case RequestKind::kLint: return "lint";
    case RequestKind::kBounds: return "bounds";
    case RequestKind::kWhatif: return "whatif";
    case RequestKind::kSearch: return "search";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kPing: return "ping";
  }
  return "?";
}

bool Request::cacheable() const {
  return kind != RequestKind::kMetrics && kind != RequestKind::kPing;
}

std::string Request::canonical_key() const {
  std::string key = to_string(kind);
  const auto field = [&key](const char* name, const std::string& value) {
    key += '\x1f';
    key += name;
    key += '=';
    key += value;
  };
  switch (kind) {
    case RequestKind::kPredict:
    case RequestKind::kBounds:
      field("input", input);
      field("arch", arch);
      field("dist", dist);
      field("iterations", std::to_string(iterations));
      break;
    case RequestKind::kLint:
      field("input", input);
      field("arch", arch);
      field("dist", dist);
      break;
    case RequestKind::kWhatif: {
      field("input", input);
      field("arch", arch);
      field("dist", dist);
      field("iterations", std::to_string(iterations));
      std::string specs;
      for (const auto& p : perturbs) {
        specs += core::perturbation_kind_name(p.kind);
        specs += ':';
        specs += std::to_string(p.rank);
        specs += ':';
        specs += obs::json_number(p.factor);
        specs += ';';
      }
      field("perturb", specs);
      break;
    }
    case RequestKind::kSearch:
      field("input", input);
      field("arch", arch);
      field("algorithm", algorithm);
      field("seed", std::to_string(seed));
      field("iterations", std::to_string(iterations));
      break;
    case RequestKind::kMetrics:
    case RequestKind::kPing:
      break;  // never cached; the kind alone suffices
  }
  return key;
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Reads an optional string member; false (with error) when present but
/// not a string.
bool read_string(const obs::JsonValue& doc, const char* name,
                 std::string& out, std::string* error) {
  const obs::JsonValue* v = doc.get(name);
  if (v == nullptr) return true;
  if (!v->is_string())
    return fail(error, std::string("\"") + name + "\" must be a string");
  out = v->string;
  return true;
}

/// Reads an optional non-negative integer member (JSON numbers; rejects
/// fractions and out-of-range values).
bool read_int(const obs::JsonValue& doc, const char* name, int max_value,
              int& out, std::string* error) {
  const obs::JsonValue* v = doc.get(name);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number < 0 || v->number > max_value ||
      v->number != std::floor(v->number)) {
    return fail(error, std::string("\"") + name +
                           "\" must be an integer in [0, " +
                           std::to_string(max_value) + "]");
  }
  out = static_cast<int>(v->number);
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request& out, std::string* error) {
  out = Request{};
  obs::JsonValue doc;
  std::string parse_error;
  if (!obs::json_parse(line, doc, obs::JsonParseOptions::untrusted(),
                       &parse_error))
    return fail(error, "malformed request: " + parse_error);
  if (!doc.is_object()) return fail(error, "request must be a JSON object");

  if (const obs::JsonValue* id = doc.get("id")) out.id = json_serialize(*id);

  const obs::JsonValue* kind = doc.get("kind");
  if (kind == nullptr || !kind->is_string())
    return fail(error, "request needs a \"kind\" string");
  if (kind->string == "predict") {
    out.kind = RequestKind::kPredict;
  } else if (kind->string == "lint") {
    out.kind = RequestKind::kLint;
  } else if (kind->string == "bounds") {
    out.kind = RequestKind::kBounds;
  } else if (kind->string == "whatif") {
    out.kind = RequestKind::kWhatif;
  } else if (kind->string == "search") {
    out.kind = RequestKind::kSearch;
  } else if (kind->string == "metrics") {
    out.kind = RequestKind::kMetrics;
  } else if (kind->string == "ping") {
    out.kind = RequestKind::kPing;
  } else {
    return fail(error, "unknown request kind '" + kind->string +
                           "' (expected predict|lint|bounds|whatif|search|"
                           "metrics|ping)");
  }

  if (!read_string(doc, "input", out.input, error)) return false;
  if (!read_string(doc, "arch", out.arch, error)) return false;
  if (!read_string(doc, "dist", out.dist, error)) return false;
  if (out.dist == "even") out.dist = "blk";  // canonical alias
  if (!read_int(doc, "iterations", 1000000, out.iterations, error))
    return false;
  if (!read_string(doc, "algorithm", out.algorithm, error)) return false;
  if (const obs::JsonValue* seed = doc.get("seed")) {
    if (!seed->is_number() || seed->number < 0 ||
        seed->number != std::floor(seed->number))
      return fail(error, "\"seed\" must be a non-negative integer");
    out.seed = static_cast<std::uint64_t>(seed->number);
  }
  if (!read_int(doc, "delay_ms", 10000, out.delay_ms, error)) return false;
  if (!read_string(doc, "echo", out.echo, error)) return false;

  if (const obs::JsonValue* perturb = doc.get("perturb")) {
    if (!perturb->is_array())
      return fail(error, "\"perturb\" must be an array of specs");
    try {
      for (const auto& spec : perturb->array)
        out.perturbs.push_back(parse_perturbation(spec));
    } catch (const CheckError& e) {
      return fail(error, e.what());
    }
  }

  const bool needs_input = out.kind == RequestKind::kPredict ||
                           out.kind == RequestKind::kLint ||
                           out.kind == RequestKind::kBounds ||
                           out.kind == RequestKind::kWhatif ||
                           out.kind == RequestKind::kSearch;
  if (needs_input && out.input.empty())
    return fail(error, std::string("\"") + to_string(out.kind) +
                           "\" needs an \"input\"");
  return true;
}

std::string ok_envelope(const Request& request, const std::string& payload) {
  std::string line = "{\"id\":";
  line += request.id;
  line += ",\"kind\":";
  line += obs::json_escape(to_string(request.kind));
  line += ",\"ok\":true,\"payload\":";
  line += payload;
  line += '}';
  return line;
}

std::string error_envelope(const Request& request,
                           const std::string& message) {
  std::string line = "{\"id\":";
  line += request.id;
  line += ",\"kind\":";
  line += obs::json_escape(to_string(request.kind));
  line += ",\"ok\":false,\"error\":";
  line += obs::json_escape(message);
  line += '}';
  return line;
}

}  // namespace mheta::serve
