#include "serve/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "serve/ops.hpp"
#include "util/check.hpp"
#include "util/signal.hpp"

namespace mheta::serve {

namespace {

constexpr int kMaxPingDelayMs = 2000;  // server-side cap on ping delay_ms

int kind_index(RequestKind kind) { return static_cast<int>(kind); }

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      sessions_(&metrics_),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (options_.threads <= 0)
    options_.threads = static_cast<int>(std::thread::hardware_concurrency());
  if (options_.threads < 2) options_.threads = 2;  // acceptor + >=1 worker

  int fds[2];
  MHETA_CHECK(::pipe(fds) == 0);
  stop_read_ = util::FdOwner(fds[0]);
  stop_write_ = util::FdOwner(fds[1]);

  cache_.set_metrics(&metrics_, "serve_cache");
  requests_total_ = &metrics_.counter("serve_requests_total",
                                      "requests handled (any outcome)");
  errors_total_ = &metrics_.counter("serve_errors_total",
                                    "requests answered with an error envelope");
  connections_total_ =
      &metrics_.counter("serve_connections_total", "connections accepted");
  inflight_ = &metrics_.gauge("serve_inflight_requests",
                              "requests currently executing");
  queue_depth_ = &metrics_.gauge("serve_queue_depth",
                                 "accepted connections waiting for a worker");
  request_seconds_ =
      &metrics_.histogram("serve_request_seconds",
                          obs::MetricsRegistry::default_time_bounds(),
                          "request latency, all kinds");
  for (int i = 0; i < 7; ++i) {
    const char* kind = to_string(static_cast<RequestKind>(i));
    kind_totals_[i] =
        &metrics_.counter(std::string("serve_requests_") + kind + "_total",
                          std::string(kind) + " requests handled");
    kind_seconds_[i] =
        &metrics_.histogram(std::string("serve_") + kind + "_seconds",
                            obs::MetricsRegistry::default_time_bounds(),
                            std::string(kind) + " request latency");
  }
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         util::ShutdownToken::instance().requested();
}

void Server::shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_write_.fd(), &byte, 1);
  queue_cv_.notify_all();
}

void Server::run() {
  const util::UnixListener listener(options_.socket_path);
  util::ThreadPool pool(options_.threads);
  pool.parallel_for(options_.threads, [&](std::int64_t i) {
    if (i == 0) {
      acceptor_loop(listener);
    } else {
      worker_loop();
    }
  });
}

void Server::acceptor_loop(const util::UnixListener& listener) {
  while (!stopping()) {
    const int fd =
        listener.accept(stop_read_.fd(), options_.accept_timeout_ms);
    if (fd < 0) continue;  // timeout, signal or stop wake; recheck
    connections_total_->inc();
    util::set_recv_timeout(fd, options_.read_timeout_ms);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.emplace_back(fd);
      queue_depth_->set(static_cast<double>(pending_.size()));
    }
    queue_cv_.notify_one();
  }
  // Translate a signal-initiated stop into the programmatic one so parked
  // workers wake, then drain.
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void Server::worker_loop() {
  for (;;) {
    util::FdOwner conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopped and fully drained
      conn = std::move(pending_.front());
      pending_.pop_front();
      queue_depth_->set(static_cast<double>(pending_.size()));
    }
    serve_connection(std::move(conn));
  }
}

void Server::serve_connection(util::FdOwner conn) {
  util::LineReader reader(conn.fd(), options_.max_request_bytes);
  std::string line;
  for (;;) {
    // Drain contract: once stopping, answer every complete line already
    // received, then close; never abandon a request mid-flight.
    if (stopping() && !reader.has_buffered_line()) return;
    const util::LineReader::Status status = reader.next(line);
    if (status == util::LineReader::Status::kTimeout) continue;
    if (status == util::LineReader::Status::kTooLong) {
      errors_total_->inc();
      util::write_all(conn.fd(),
                      "{\"id\":null,\"ok\":false,\"error\":\"request line "
                      "exceeds the frame limit\"}\n");
      return;  // framing is lost; the connection cannot be resynced
    }
    if (status != util::LineReader::Status::kLine) return;  // EOF or error
    if (!util::write_all(conn.fd(), handle_line(line) + "\n")) return;
  }
}

std::string Server::handle_line(const std::string& line) {
  const auto begin = std::chrono::steady_clock::now();
  requests_total_->inc();
  inflight_->add(1.0);

  Request request;
  std::string response;
  std::string error;
  bool parsed = parse_request(line, request, &error);
  if (!parsed) {
    errors_total_->inc();
    response = error_envelope(request, error);
  } else {
    kind_totals_[kind_index(request.kind)]->inc();
    try {
      switch (request.kind) {
        case RequestKind::kMetrics: {
          std::ostringstream text;
          metrics_.export_prometheus(text);
          response = ok_envelope(request, obs::json_escape(text.str()));
          break;
        }
        case RequestKind::kPing: {
          if (request.delay_ms > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(request.delay_ms, kMaxPingDelayMs)));
          }
          response = ok_envelope(request, "{\"echo\":" +
                                              obs::json_escape(request.echo) +
                                              ",\"pong\":true}");
          break;
        }
        default: {
          const std::string key = request.canonical_key();
          std::string payload;
          if (!cache_.get(key, &payload)) {
            payload = compute_payload(request);
            cache_.put(key, payload);
          }
          response = ok_envelope(request, payload);
        }
      }
    } catch (const std::exception& e) {
      errors_total_->inc();
      response = error_envelope(request, e.what());
    }
  }

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  request_seconds_->observe(seconds);
  if (parsed) kind_seconds_[kind_index(request.kind)]->observe(seconds);
  inflight_->add(-1.0);
  return response;
}

std::string Server::compute_payload(const Request& request) {
  switch (request.kind) {
    case RequestKind::kLint: {
      const LintRun run = lint_input(request.input, request.arch, request.dist,
                                     /*bounds=*/false, &sessions_);
      return obs::json_serialize(lint_payload(run));
    }
    case RequestKind::kPredict: {
      const auto session = sessions_.acquire(request.input, request.arch);
      return obs::json_serialize(
          predict_payload(*session, request.dist, request.iterations));
    }
    case RequestKind::kBounds: {
      const auto session = sessions_.acquire(request.input, request.arch);
      return obs::json_serialize(
          bounds_payload(*session, request.dist, request.iterations));
    }
    case RequestKind::kWhatif: {
      const auto session = sessions_.acquire(request.input, request.arch);
      return obs::json_serialize(whatif_payload(
          *session, request.dist, request.iterations, request.perturbs));
    }
    case RequestKind::kSearch: {
      const auto session = sessions_.acquire(request.input, request.arch);
      return obs::json_serialize(search_payload(
          *session, request.algorithm, request.seed, request.iterations));
    }
    case RequestKind::kMetrics:
    case RequestKind::kPing:
      break;  // handled inline in handle_line; never cached
  }
  throw CheckError("request kind has no payload");
}

}  // namespace mheta::serve
