#include "serve/session.hpp"

#include <fstream>
#include <utility>

#include "core/structure_io.hpp"
#include "obs/profile.hpp"
#include "util/check.hpp"

namespace mheta::serve {

namespace {

exp::Workload resolve_workload(const std::string& input) {
  if (auto w = exp::workload_by_name(input)) return *w;
  std::ifstream file(input);
  if (!file)
    throw CheckError("unknown app or unreadable structure file '" + input +
                     "'");
  exp::Workload w;
  w.program = core::load_structure(file);
  w.name = w.program.name.empty() ? input : w.program.name;
  return w;
}

}  // namespace

Session::Session(std::string input, const std::string& arch_name)
    : input_(std::move(input)),
      arch_name_(arch_name),
      workload_(resolve_workload(input_)),
      arch_(cluster::find_arch(arch_name)),
      predictor_(exp::build_predictor(arch_, workload_, eopts_)),
      ctx_(exp::make_context(arch_, workload_, eopts_)) {}

const analysis::bounds::CostBoundsAnalyzer& Session::bounds_analyzer() const {
  std::lock_guard<std::mutex> lock(bounds_mu_);
  if (!bounds_) {
    bounds_.emplace(
        predictor_.structure(), predictor_.params(), predictor_.memory_bytes(),
        analysis::bounds::BoundsKnobs{
            predictor_.options().planner_overhead_bytes,
            predictor_.options().max_blocks});
  }
  return *bounds_;
}

dist::GenBlock Session::distribution(const std::string& name) const {
  return obs::dist_by_name(ctx_, name);
}

SessionRegistry::SessionRegistry(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    built_ = &metrics->counter("serve_sessions_built_total",
                               "predictor sessions calibrated and interned");
    hits_ = &metrics->counter("serve_session_hits_total",
                              "requests served from an interned session");
  }
}

std::shared_ptr<const Session> SessionRegistry::acquire(
    const std::string& input, const std::string& arch) {
  const std::string key = input + '\x1f' + arch;
  std::promise<std::shared_ptr<const Session>> promise;
  SessionFuture future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(key);
    if (it != sessions_.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      sessions_.emplace(key, future);
      builder = true;
    }
  }
  if (builder) {
    try {
      auto session = std::make_shared<const Session>(input, arch);
      if (built_ != nullptr) built_->inc();
      promise.set_value(std::move(session));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Do not cache the failure: a later request may retry (the file may
      // exist by then).
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.erase(key);
      throw;
    }
  } else if (hits_ != nullptr) {
    hits_->inc();
  }
  return future.get();
}

std::size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace mheta::serve
