// The mheta-serve wire protocol.
//
// Framing is newline-delimited JSON: one request object per line, one
// response object per line, over a local stream socket. Requests are
// parsed with the hardened parser profile (depth/size limits, duplicate
// keys and non-finite numbers rejected — these bytes come off a socket,
// unlike the batch CLIs' self-produced files).
//
// Request object:
//   {"kind": "predict|lint|bounds|whatif|search|metrics|ping",
//    "id": <any JSON value, echoed verbatim>,          (optional)
//    "input": "jacobi" | "path/to/file.mheta",
//    "arch": "HY1", "dist": "even|blk|bal|ic|icbal",
//    "iterations": N,                 (0 -> the workload's default)
//    "perturb": [{"param": ..., "rank": N, "factor": F}, ...],  (whatif)
//    "algorithm": "...", "seed": N,   (search)
//    "delay_ms": N, "echo": "..."}    (ping; delay is capped server-side)
//
// Response envelope (one line):
//   {"id": <echo>, "kind": "...", "ok": true,  "payload": {...}}
//   {"id": <echo>, "kind": "...", "ok": false, "error": "..."}
//
// Caching: canonical_key() renders the normalized request fields (defaults
// filled, dist aliases collapsed, `id` excluded) in a fixed order; two
// requests with equal keys are the same query, so the response cache maps
// (kind, key) -> payload bytes and the envelope is re-assembled around the
// cached payload with the caller's own id.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/critical.hpp"
#include "obs/json.hpp"

namespace mheta::serve {

enum class RequestKind {
  kPredict,
  kLint,
  kBounds,
  kWhatif,
  kSearch,
  kMetrics,
  kPing,
};

const char* to_string(RequestKind kind);

struct Request {
  RequestKind kind = RequestKind::kPing;
  /// The request's "id" member re-serialized, or "null" when absent.
  std::string id = "null";
  std::string input;
  std::string arch = "HY1";
  std::string dist = "blk";  ///< canonical: "even" collapses to "blk"
  int iterations = 0;
  std::vector<core::Perturbation> perturbs;  // whatif
  std::string algorithm = "hill";            // search
  std::uint64_t seed = 42;                   // search
  int delay_ms = 0;                          // ping
  std::string echo;                          // ping

  /// True for kinds whose payload is a pure function of the canonical key
  /// (everything except metrics and ping).
  bool cacheable() const;

  /// Deterministic cache key over the normalized fields (id excluded).
  std::string canonical_key() const;
};

/// Parses one request line with the hardened parser. Returns false and
/// sets `error` on malformed JSON, unknown kinds, missing or ill-typed
/// fields; `out.id` is still populated when the document parsed (so the
/// error envelope can echo it).
bool parse_request(const std::string& line, Request& out, std::string* error);

/// Assembles the one-line success envelope around a serialized payload.
std::string ok_envelope(const Request& request, const std::string& payload);

/// Assembles the one-line error envelope. Usable before parsing succeeded
/// (pass the parsed-or-default request).
std::string error_envelope(const Request& request, const std::string& message);

}  // namespace mheta::serve
