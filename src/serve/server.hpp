// The mheta-serve daemon core.
//
// One Server owns the listening Unix-domain socket, a util::ThreadPool
// whose single parallel_for call provides the long-lived threads (index 0
// is the acceptor, the rest drain a connection queue), the interned
// SessionRegistry, a sharded response cache mapping canonical request keys
// to serialized payload bytes, and the obs::MetricsRegistry everything
// reports into (also served to clients as Prometheus text by the
// `metrics` request kind).
//
// Shutdown is drain-and-exit: shutdown() (or SIGINT/SIGTERM through
// util::ShutdownToken) stops the acceptor, and each worker finishes its
// in-flight request, answers any complete lines already received, then
// closes — a mid-request signal never drops a response. Reads are bounded
// by SO_RCVTIMEO so a half-written line cannot stall the drain.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>

#include "obs/registry.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "util/concurrent_lru.hpp"
#include "util/net.hpp"
#include "util/thread_pool.hpp"

namespace mheta::serve {

struct ServerOptions {
  std::string socket_path;
  /// Total threads (acceptor + workers); <= 0 means hardware concurrency.
  /// Clamped to >= 2 so there is always at least one worker.
  int threads = 0;
  std::size_t cache_capacity = 1024;  ///< responses; 0 disables the cache
  std::size_t cache_shards = 8;
  std::size_t max_request_bytes = 1 << 20;  ///< per request line
  int accept_timeout_ms = 100;  ///< shutdown-poll period for the acceptor
  int read_timeout_ms = 500;    ///< SO_RCVTIMEO on connections (drain bound)
};

class Server {
 public:
  explicit Server(ServerOptions options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerOptions& options() const { return options_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  SessionRegistry& sessions() { return sessions_; }
  const util::ConcurrentLru<std::string, std::string>& cache() const {
    return cache_;
  }

  /// Binds the socket and serves until shutdown() is called or a
  /// ShutdownToken signal arrives. Blocks; run from the owning thread.
  /// Throws CheckError when the socket cannot be bound.
  void run();

  /// Requests drain-and-exit; safe from any thread. run() returns once
  /// every in-flight request has been answered.
  void shutdown();

  bool stopping() const;

  /// Parses, dispatches and serializes one request line to its one-line
  /// response (no trailing newline). This is the entire per-request path —
  /// cache lookup included — exposed so tests and the in-process bench can
  /// drive it without a socket.
  std::string handle_line(const std::string& line);

 private:
  void acceptor_loop(const util::UnixListener& listener);
  void worker_loop();
  void serve_connection(util::FdOwner conn);

  /// Computes a cacheable request's payload (serialized JSON).
  std::string compute_payload(const Request& request);

  ServerOptions options_;
  obs::MetricsRegistry metrics_;
  SessionRegistry sessions_;
  util::ConcurrentLru<std::string, std::string> cache_;

  std::atomic<bool> stop_{false};
  util::FdOwner stop_read_, stop_write_;  // self-pipe waking the acceptor

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<util::FdOwner> pending_;  // accepted, not yet picked up

  // Cached metric handles (created in the constructor; updates lock-free).
  obs::Counter* requests_total_;
  obs::Counter* errors_total_;
  obs::Counter* connections_total_;
  obs::Counter* kind_totals_[7];
  obs::Gauge* inflight_;
  obs::Gauge* queue_depth_;
  obs::Histogram* request_seconds_;
  obs::Histogram* kind_seconds_[7];
};

}  // namespace mheta::serve
