// Interned per-(input, architecture) predictor sessions.
//
// Building a core::Predictor means running calibration plus one
// instrumented iteration on the emulated machine — the full startup cost
// every batch CLI pays per invocation. The daemon pays it once: the first
// request against a (structure, arch) pair builds a Session (workload,
// predictor with its interned cost tables, distribution context, lazily a
// bounds analyzer) and every later request — predict, whatif, bounds,
// search, whatever dist — shares it. Sessions are immutable after
// construction and Predictor::predict/predict_attributed/perturbed are
// const and thread-safe, so workers use them lock-free.
//
// Concurrent first touches of the same key build once: the registry stores
// a shared_future per key, so the second requester blocks on the first
// build instead of duplicating it, and the registry mutex is never held
// across a build.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "analysis/bounds/bounds.hpp"
#include "cluster/suite.hpp"
#include "core/model.hpp"
#include "dist/generators.hpp"
#include "exp/experiment.hpp"
#include "obs/registry.hpp"

namespace mheta::serve {

/// One interned (input, arch) state. Immutable after construction.
class Session {
 public:
  Session(std::string input, const std::string& arch_name);

  const std::string& input() const { return input_; }
  const std::string& arch_name() const { return arch_name_; }
  const exp::Workload& workload() const { return workload_; }
  const cluster::ArchConfig& arch() const { return arch_; }
  const core::Predictor& predictor() const { return predictor_; }
  const dist::DistContext& context() const { return ctx_; }

  /// The interval-bounds analyzer over this session's calibrated model,
  /// built on first use (borrows the predictor's structure/params/memories,
  /// which live exactly as long as this session).
  const analysis::bounds::CostBoundsAnalyzer& bounds_analyzer() const;

  /// Named distribution over this session's context (even|blk|bal|ic|icbal).
  dist::GenBlock distribution(const std::string& name) const;

 private:
  std::string input_;
  std::string arch_name_;
  exp::Workload workload_;
  cluster::ArchConfig arch_;
  exp::ExperimentOptions eopts_;
  core::Predictor predictor_;
  dist::DistContext ctx_;
  mutable std::mutex bounds_mu_;
  mutable std::optional<analysis::bounds::CostBoundsAnalyzer> bounds_;
};

/// Thread-safe intern table of Sessions keyed by (input, arch).
class SessionRegistry {
 public:
  /// `metrics` (optional, not owned) reports `serve_sessions_built_total`
  /// and `serve_session_hits_total`.
  explicit SessionRegistry(obs::MetricsRegistry* metrics = nullptr);

  /// Returns the session for (input, arch), building it on first use.
  /// Throws what the build threw (unknown app, unreadable file, bad arch);
  /// failed builds are not cached, so a later request may retry.
  std::shared_ptr<const Session> acquire(const std::string& input,
                                         const std::string& arch);

  std::size_t size() const;

 private:
  using SessionFuture = std::shared_future<std::shared_ptr<const Session>>;

  mutable std::mutex mu_;
  std::map<std::string, SessionFuture> sessions_;  // guarded by mu_
  obs::Counter* built_ = nullptr;
  obs::Counter* hits_ = nullptr;
};

}  // namespace mheta::serve
