#include "serve/ops.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "analysis/lint.hpp"
#include "analysis/rules.hpp"
#include "core/structure_io.hpp"
#include "obs/profile.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "util/check.hpp"

namespace mheta::serve {

namespace {

dist::GenBlock make_dist(const std::string& kind,
                         const dist::DistContext& ctx) {
  if (kind == "blk") return dist::block_dist(ctx);
  if (kind == "bal") return dist::balanced_dist(ctx);
  if (kind == "ic") return dist::in_core_dist(ctx);
  if (kind == "icbal") return dist::in_core_balanced_dist(ctx);
  throw CheckError("unknown distribution kind: " + kind);
}

obs::JsonValue number(double v) {
  obs::JsonValue j;
  j.kind = obs::JsonValue::Kind::kNumber;
  j.number = v;
  return j;
}

obs::JsonValue string_value(const std::string& s) {
  obs::JsonValue j;
  j.kind = obs::JsonValue::Kind::kString;
  j.string = s;
  return j;
}

obs::JsonValue object() {
  obs::JsonValue j;
  j.kind = obs::JsonValue::Kind::kObject;
  return j;
}

obs::JsonValue array() {
  obs::JsonValue j;
  j.kind = obs::JsonValue::Kind::kArray;
  return j;
}

obs::JsonValue interval_json(const analysis::bounds::Interval& iv) {
  obs::JsonValue j = object();
  j.object["lo"] = number(iv.lo);
  j.object["hi"] = number(iv.hi);
  return j;
}

obs::JsonValue counts_json(const dist::GenBlock& d) {
  obs::JsonValue arr = array();
  for (int i = 0; i < d.nodes(); ++i)
    arr.array.push_back(number(static_cast<double>(d.count(i))));
  return arr;
}

int effective_iterations(const Session& session, int iterations) {
  return iterations > 0 ? iterations : session.workload().iterations;
}

}  // namespace

LintRun lint_input(const std::string& input, const std::string& arch_name,
                   const std::string& dist_kind, bool bounds,
                   SessionRegistry* sessions) {
  LintRun run;
  core::ProgramStructure program;
  analysis::StructureLocations locations;

  if (auto w = exp::workload_by_name(input)) {
    program = std::move(w->program);
    run.diags.set_artifact(program.name);
    run.diags.merge(analysis::lint_structure(program));
  } else {
    std::ifstream file(input);
    if (!file) throw CheckError("cannot open '" + input + "'");
    locations.file = input;
    run.diags.set_artifact(input);
    // Collect rule findings instead of throwing; syntax errors still throw.
    program = core::load_structure(file, &locations, &run.diags);
  }

  if (arch_name.empty()) {
    MHETA_CHECK_MSG(!bounds, "--bounds requires an architecture");
    return run;
  }

  const cluster::ArchConfig arch = cluster::find_arch(arch_name);
  const auto ctx = dist::DistContext::from_cluster(
      arch.cluster, program.rows(), program.bytes_per_row());
  const dist::GenBlock d = make_dist(dist_kind, ctx);
  analysis::LintInput in;
  in.structure = &program;
  in.locations = locations.file.empty() ? nullptr : &locations;
  in.cluster = &arch.cluster;
  in.distribution = &d;

  // With bounds, calibrate the model on the emulated machine so the
  // model-input rules (MH012-15, MH019) and the interval-bounds rules
  // (MH022-23) see real MhetaParams and per-node memories. Reuse the
  // daemon's interned session when a registry is given; the batch tool
  // builds fresh (same code path, Session construction).
  std::shared_ptr<const Session> session;
  if (bounds) {
    if (sessions != nullptr) {
      session = sessions->acquire(input, arch_name);
    } else {
      session = std::make_shared<const Session>(input, arch_name);
    }
    const core::Predictor& predictor = session->predictor();
    in.structure = &predictor.structure();
    in.params = &predictor.params();
    in.memory_bytes = &predictor.memory_bytes();
    in.planner_overhead_bytes = predictor.options().planner_overhead_bytes;
    in.max_blocks = predictor.options().max_blocks;
  }
  // Replace the structure-only findings with the full triple run so each
  // rule reports once.
  analysis::Diagnostics full = analysis::run_rules(in);
  full.set_artifact(run.diags.artifact());
  run.diags = std::move(full);

  if (bounds) {
    const auto& analyzer = session->bounds_analyzer();
    run.iterations = session->workload().iterations;
    run.total = analyzer.total_bounds(d, run.iterations);
    run.stages = analyzer.stage_bounds(d);
    run.structure = session->predictor().structure();
    run.has_bounds = true;
  }
  return run;
}

void write_bounds_text(std::ostream& os, const LintRun& run) {
  MHETA_CHECK(run.has_bounds);
  os << "bounds (" << run.iterations << " iteration(s)): total ["
     << run.total.total.lo << ", " << run.total.total.hi << "] s, rel width "
     << run.total.width_rel() << '\n';
  for (std::size_t r = 0; r < run.total.node_end.size(); ++r)
    os << "  node " << r << ": [" << run.total.node_end[r].lo << ", "
       << run.total.node_end[r].hi << "] s\n";
  // Stage envelopes are per (section, stage, rank); fold ranks so the
  // report stays one line per stage.
  for (const auto& section : run.structure.sections) {
    for (const auto& stage : section.stages) {
      analysis::bounds::Interval folded{0, 0};
      bool first = true;
      for (const auto& sb : run.stages) {
        if (sb.section_id != section.id || sb.stage_id != stage.id) continue;
        if (first) {
          folded = sb.time;
          first = false;
        } else {
          folded.lo = std::min(folded.lo, sb.time.lo);
          folded.hi = std::max(folded.hi, sb.time.hi);
        }
      }
      if (first) continue;
      os << "  section " << section.id << " stage " << stage.id
         << " (per iteration, across ranks): [" << folded.lo << ", "
         << folded.hi << "] s\n";
    }
  }
}

obs::JsonValue bounds_to_json(const LintRun& run) {
  MHETA_CHECK(run.has_bounds);
  obs::JsonValue j = object();
  j.object["iterations"] = number(run.iterations);
  j.object["total"] = interval_json(run.total.total);
  j.object["rel_width"] = number(run.total.width_rel());
  obs::JsonValue nodes = array();
  for (const auto& iv : run.total.node_end)
    nodes.array.push_back(interval_json(iv));
  j.object["node_end"] = std::move(nodes);
  obs::JsonValue stages = array();
  for (const auto& section : run.structure.sections) {
    for (const auto& stage : section.stages) {
      analysis::bounds::Interval folded{0, 0};
      bool first = true;
      for (const auto& sb : run.stages) {
        if (sb.section_id != section.id || sb.stage_id != stage.id) continue;
        if (first) {
          folded = sb.time;
          first = false;
        } else {
          folded.lo = std::min(folded.lo, sb.time.lo);
          folded.hi = std::max(folded.hi, sb.time.hi);
        }
      }
      if (first) continue;
      obs::JsonValue entry = object();
      entry.object["section"] = number(section.id);
      entry.object["stage"] = number(stage.id);
      entry.object["per_iteration"] = interval_json(folded);
      stages.array.push_back(std::move(entry));
    }
  }
  j.object["stages"] = std::move(stages);
  return j;
}

obs::JsonValue predict_payload(const Session& session, const std::string& dist,
                               int iterations) {
  const int iters = effective_iterations(session, iterations);
  const dist::GenBlock d = session.distribution(dist);
  const core::Prediction p = session.predictor().predict(d, iters);
  obs::JsonValue j = object();
  j.object["app"] = string_value(session.workload().name);
  j.object["arch"] = string_value(session.arch_name());
  j.object["dist"] = string_value(dist);
  j.object["iterations"] = number(iters);
  j.object["total_s"] = number(p.total_s);
  obs::JsonValue ends = array();
  for (const double e : p.node_end_s) ends.array.push_back(number(e));
  j.object["node_end_s"] = std::move(ends);
  j.object["compute_s"] = number(p.compute_s);
  j.object["io_s"] = number(p.io_s);
  j.object["counts"] = counts_json(d);
  return j;
}

obs::JsonValue lint_payload(const LintRun& run) {
  obs::JsonValue j = object();
  j.object["artifact"] = string_value(run.diags.artifact());
  j.object["errors"] = number(static_cast<double>(run.diags.error_count()));
  j.object["warnings"] =
      number(static_cast<double>(run.diags.warning_count()));
  // The diagnostics themselves, exactly as mheta-lint --json prints them:
  // serialize through the same writer, then embed the parsed document.
  std::ostringstream report;
  run.diags.print_json(report);
  obs::JsonValue parsed;
  std::string error;
  MHETA_CHECK_MSG(obs::json_parse(report.str(), parsed, &error), error);
  j.object["report"] = std::move(parsed);
  if (run.has_bounds) j.object["bounds"] = bounds_to_json(run);
  return j;
}

obs::JsonValue bounds_payload(const Session& session, const std::string& dist,
                              int iterations) {
  const int iters = effective_iterations(session, iterations);
  const dist::GenBlock d = session.distribution(dist);
  const auto& analyzer = session.bounds_analyzer();
  LintRun run;
  run.has_bounds = true;
  run.iterations = iters;
  run.total = analyzer.total_bounds(d, iters);
  run.stages = analyzer.stage_bounds(d);
  run.structure = session.predictor().structure();
  obs::JsonValue j = bounds_to_json(run);
  j.object["app"] = string_value(session.workload().name);
  j.object["arch"] = string_value(session.arch_name());
  j.object["dist"] = string_value(dist);
  // The envelope must contain the point prediction — certified, not just
  // plausible: lo <= predict() <= hi by the analyzer's soundness contract.
  j.object["predicted_total_s"] =
      number(session.predictor().predict(d, iters).total_s);
  return j;
}

obs::JsonValue whatif_payload(const Session& session, const std::string& dist,
                              int iterations,
                              const std::vector<core::Perturbation>& perturbs) {
  const int iters = effective_iterations(session, iterations);
  const dist::GenBlock d = session.distribution(dist);
  const core::Predictor& base = session.predictor();
  const double base_s = base.predict(d, iters).total_s;

  // Fold every perturbation into the measured parameters, then re-intern
  // once — bit-identical to chaining Predictor::perturbed (both build from
  // perturb_params; the sensitivity tests pin that identity).
  instrument::MhetaParams params = base.params();
  for (const auto& p : perturbs) params = core::perturb_params(params, p);
  const core::Predictor perturbed(base.structure(), std::move(params),
                                  base.memory_bytes(), base.options());
  const double what_s = perturbed.predict(d, iters).total_s;

  obs::JsonValue j = object();
  j.object["app"] = string_value(session.workload().name);
  j.object["arch"] = string_value(session.arch_name());
  j.object["dist"] = string_value(dist);
  j.object["iterations"] = number(iters);
  j.object["base_total_s"] = number(base_s);
  j.object["total_s"] = number(what_s);
  j.object["delta_s"] = number(what_s - base_s);
  j.object["rel_delta"] = number(base_s != 0 ? (what_s - base_s) / base_s : 0);
  obs::JsonValue specs = array();
  for (const auto& p : perturbs) {
    obs::JsonValue spec = object();
    spec.object["param"] = string_value(core::perturbation_kind_name(p.kind));
    spec.object["rank"] = number(p.rank);
    spec.object["factor"] = number(p.factor);
    specs.array.push_back(std::move(spec));
  }
  j.object["perturbations"] = std::move(specs);
  return j;
}

obs::JsonValue search_payload(const Session& session,
                              const std::string& algorithm,
                              std::uint64_t seed, int iterations) {
  const int iters = effective_iterations(session, iterations);
  const search::Objective objective = search::make_objective(
      session.predictor(), iters, session.arch().cluster);
  const dist::DistContext& ctx = session.context();
  const dist::GenBlock start = dist::block_dist(ctx);

  search::SearchResult result;
  if (algorithm == "tabu") {
    result = search::tabu_search(start, objective, {}, seed);
  } else if (algorithm == "anneal") {
    result = search::simulated_annealing(start, objective, {}, seed);
  } else if (algorithm == "hill") {
    result = search::hill_climb(start, objective, {}, seed);
  } else if (algorithm == "genetic") {
    result = search::genetic(ctx, objective, {}, seed);
  } else if (algorithm == "gbs") {
    const search::SpectrumSpace space(ctx, session.arch().spectrum);
    result = search::gbs(space, objective);
  } else if (algorithm == "random") {
    const search::SpectrumSpace space(ctx, session.arch().spectrum);
    result = search::random_search(space, objective, 64, seed);
  } else {
    throw CheckError("unknown search algorithm '" + algorithm +
                     "' (expected tabu|gbs|anneal|genetic|random|hill)");
  }

  obs::JsonValue j = object();
  j.object["app"] = string_value(session.workload().name);
  j.object["arch"] = string_value(session.arch_name());
  j.object["algorithm"] = string_value(algorithm);
  j.object["seed"] = number(static_cast<double>(seed));
  j.object["iterations"] = number(iters);
  j.object["best_total_s"] = number(result.best_time);
  j.object["evaluations"] = number(result.evaluations);
  j.object["best_counts"] = counts_json(result.best);
  return j;
}

core::Perturbation parse_perturbation(const obs::JsonValue& spec) {
  MHETA_CHECK_MSG(spec.is_object(), "perturbation spec must be an object");
  core::Perturbation p;
  const obs::JsonValue* param = spec.get("param");
  MHETA_CHECK_MSG(param != nullptr && param->is_string(),
                  "perturbation needs a \"param\" string");
  if (param->string == "compute") {
    p.kind = core::Perturbation::Kind::kCompute;
  } else if (param->string == "disk") {
    p.kind = core::Perturbation::Kind::kDisk;
  } else if (param->string == "net_latency") {
    p.kind = core::Perturbation::Kind::kNetLatency;
  } else if (param->string == "net_bandwidth") {
    p.kind = core::Perturbation::Kind::kNetBandwidth;
  } else {
    throw CheckError("unknown perturbation param '" + param->string +
                     "' (expected compute|disk|net_latency|net_bandwidth)");
  }
  if (const obs::JsonValue* rank = spec.get("rank")) {
    MHETA_CHECK_MSG(rank->is_number(), "perturbation \"rank\" must be a number");
    p.rank = static_cast<int>(rank->number);
  }
  const obs::JsonValue* factor = spec.get("factor");
  MHETA_CHECK_MSG(factor != nullptr && factor->is_number(),
                  "perturbation needs a \"factor\" number");
  MHETA_CHECK_MSG(factor->number > 0, "perturbation factor must be > 0");
  p.factor = factor->number;
  return p;
}

}  // namespace mheta::serve
