// The request-kind implementations behind mheta-serve — and the single
// source of truth the batch CLIs share with it.
//
// Every operation takes an interned Session and returns a deterministic
// obs::JsonValue payload (object keys sort, numbers render through
// json_number), so identical requests serialize to identical bytes whether
// they were computed or served from the response cache. The lint and
// bounds paths are the exact code mheta-lint runs (lint_input /
// write_bounds_text), which is what pins the daemon's responses
// byte-identical to the batch tools rather than merely close.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/critical.hpp"
#include "obs/json.hpp"
#include "serve/session.hpp"

namespace mheta::serve {

/// Outcome of linting one input, optionally crossed with an architecture
/// and distribution (and, with `bounds`, the calibrated model). This is
/// mheta-lint's `lint_one` core, factored here so the daemon and the tool
/// run literally the same code.
struct LintRun {
  analysis::Diagnostics diags;
  /// Set when bounds were requested: the certified envelope at the
  /// workload's iteration count.
  bool has_bounds = false;
  analysis::bounds::TotalBounds total;
  std::vector<analysis::bounds::StageBound> stages;
  core::ProgramStructure structure;  ///< structure the stage fold reports on
  int iterations = 1;
};

/// Lints `input` (a built-in app name or a structure-file path). With a
/// non-empty `arch` the full triple rules run against `dist_kind`
/// (blk|bal|ic|icbal); with `bounds` additionally calibrates the model
/// (through `sessions` when provided, so the daemon reuses its interned
/// predictor) and computes the certified envelope. Throws CheckError on
/// unreadable files or unknown arch/dist names.
LintRun lint_input(const std::string& input, const std::string& arch,
                   const std::string& dist_kind, bool bounds,
                   SessionRegistry* sessions = nullptr);

/// The `mheta-lint --bounds` envelope report, exactly as the tool prints
/// it (shared so tool and daemon cannot drift).
void write_bounds_text(std::ostream& os, const LintRun& run);

/// The same envelope, machine-readable (embedded in lint/bounds payloads
/// and in `mheta-lint --bounds --json` output).
obs::JsonValue bounds_to_json(const LintRun& run);

// --- request payload builders -------------------------------------------

/// predict: model the triple; totals are Predictor::predict verbatim.
obs::JsonValue predict_payload(const Session& session, const std::string& dist,
                               int iterations);

/// lint: the diagnostics of `mheta-lint [--arch --dist]`, as JSON.
obs::JsonValue lint_payload(const LintRun& run);

/// bounds: certified [lo, hi] envelope for the session's triple.
obs::JsonValue bounds_payload(const Session& session, const std::string& dist,
                              int iterations);

/// whatif: perturbed-config delta vs the session's base prediction.
obs::JsonValue whatif_payload(const Session& session, const std::string& dist,
                              int iterations,
                              const std::vector<core::Perturbation>& perturbs);

/// search: run one distribution-search algorithm to convergence.
obs::JsonValue search_payload(const Session& session,
                              const std::string& algorithm,
                              std::uint64_t seed, int iterations);

/// Parses one perturbation spec {"param": compute|disk|net_latency|
/// net_bandwidth, "rank": N, "factor": F}. Throws CheckError on bad specs.
core::Perturbation parse_perturbation(const obs::JsonValue& spec);

}  // namespace mheta::serve
