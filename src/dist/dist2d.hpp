// Two-dimensional GEN_BLOCK distributions (extension).
//
// The paper notes that "the MHETA model extends to two-dimensional data
// distributions, but such distributions are problematic for run-time data
// distribution systems because the search space increases greatly" (§5.1).
// This module implements that extension: nodes form a P x Q grid; the rows
// are GEN_BLOCK-distributed over the P grid rows and the columns over the
// Q grid columns, so node (p,q) owns a rows_p x cols_q tile of every array.
// The bench/dim2_explosion binary quantifies the search-space claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/genblock.hpp"

namespace mheta::dist {

/// A P x Q logical node grid; rank r = p * q_dim + q.
struct NodeGrid {
  int p = 1;
  int q = 1;

  int nodes() const { return p * q; }
  bool operator==(const NodeGrid&) const = default;
  int rank_of(int pi, int qi) const { return pi * q + qi; }
  int row_of(int rank) const { return rank / q; }
  int col_of(int rank) const { return rank % q; }
};

/// A 2-D GEN_BLOCK distribution over a node grid.
class Dist2D {
 public:
  Dist2D() = default;

  /// `rows` must have grid.p entries, `cols` grid.q entries.
  Dist2D(NodeGrid grid, GenBlock rows, GenBlock cols);

  const NodeGrid& grid() const { return grid_; }
  const GenBlock& row_dist() const { return rows_; }
  const GenBlock& col_dist() const { return cols_; }

  /// Global rows / columns.
  std::int64_t total_rows() const { return rows_.total(); }
  std::int64_t total_cols() const { return cols_.total(); }

  /// The tile of rank r.
  std::int64_t rows(int rank) const { return rows_.count(grid_.row_of(rank)); }
  std::int64_t cols(int rank) const { return cols_.count(grid_.col_of(rank)); }
  std::int64_t row_begin(int rank) const {
    return rows_.first_row(grid_.row_of(rank));
  }
  std::int64_t col_begin(int rank) const {
    return cols_.first_row(grid_.col_of(rank));
  }

  /// Fraction of each array row held by rank r (cols_q / total columns).
  double width_fraction(int rank) const;

  bool operator==(const Dist2D& other) const = default;
  std::string to_string() const;

 private:
  NodeGrid grid_;
  GenBlock rows_;
  GenBlock cols_;
};

/// Context for the 2-D generators.
struct Dist2DContext {
  NodeGrid grid;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  /// Per-rank CPU powers (grid.nodes() entries, rank-ordered).
  std::vector<double> cpu_powers;
};

/// Even split in both dimensions.
Dist2D block_dist_2d(const Dist2DContext& ctx);

/// Load-balancing heuristic: grid-row shares proportional to the mean CPU
/// power of each grid row, grid-column shares to each grid column's mean.
/// (Exact 2-D balancing is not possible with tensor-product GEN_BLOCKs
/// unless the power matrix is rank-1; this is the standard approximation.)
Dist2D balanced_dist_2d(const Dist2DContext& ctx);

/// The 2-D candidate family: the tensor product of `steps+2` interpolation
/// points per dimension between Blk and Bal — |family| grows quadratically
/// with the per-dimension resolution, the explosion the paper cites.
std::vector<Dist2D> spectrum_2d(const Dist2DContext& ctx, int steps);

}  // namespace mheta::dist
