#include "dist/genblock.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace mheta::dist {

GenBlock::GenBlock(std::vector<std::int64_t> counts)
    : counts_(std::move(counts)) {
  MHETA_CHECK(!counts_.empty());
  firsts_.resize(counts_.size() + 1, 0);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    MHETA_CHECK_MSG(counts_[i] >= 0, "negative block size at node " << i);
    firsts_[i + 1] = firsts_[i] + counts_[i];
  }
}

std::int64_t GenBlock::count(int i) const {
  MHETA_CHECK(i >= 0 && i < nodes());
  return counts_[static_cast<std::size_t>(i)];
}

std::int64_t GenBlock::first_row(int i) const {
  MHETA_CHECK(i >= 0 && i < nodes());
  return firsts_[static_cast<std::size_t>(i)];
}

std::int64_t GenBlock::total() const {
  return counts_.empty() ? 0 : firsts_.back();
}

int GenBlock::owner(std::int64_t row) const {
  MHETA_CHECK_MSG(row >= 0 && row < total(), "row " << row << " out of range");
  // upper_bound over prefix sums; skip empty blocks.
  const auto it = std::upper_bound(firsts_.begin(), firsts_.end(), row);
  return static_cast<int>(std::distance(firsts_.begin(), it)) - 1;
}

std::string GenBlock::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) os << ", ";
    os << counts_[i];
  }
  os << ']';
  return os.str();
}

std::vector<std::int64_t> apportion(const std::vector<double>& shares,
                                    std::int64_t total) {
  MHETA_CHECK(!shares.empty());
  MHETA_CHECK(total >= 0);
  double sum = 0;
  for (double s : shares) {
    MHETA_CHECK_MSG(s >= 0, "negative share " << s);
    sum += s;
  }
  const std::size_t n = shares.size();
  std::vector<std::int64_t> result(n, 0);
  if (total == 0) return result;
  if (sum <= 0) {
    // Degenerate: split evenly.
    const std::int64_t base = total / static_cast<std::int64_t>(n);
    std::int64_t rem = total % static_cast<std::int64_t>(n);
    for (std::size_t i = 0; i < n; ++i)
      result[i] = base + (static_cast<std::int64_t>(i) < rem ? 1 : 0);
    return result;
  }
  // Largest-remainder method.
  std::vector<double> remainders(n);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = shares[i] / sum * static_cast<double>(total);
    result[i] = static_cast<std::int64_t>(std::floor(exact));
    remainders[i] = exact - std::floor(exact);
    assigned += result[i];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] > remainders[b];
  });
  for (std::size_t k = 0; assigned < total; ++k) {
    result[order[k % n]] += 1;
    ++assigned;
  }
  return result;
}

}  // namespace mheta::dist
