// The four named distribution generators and the distribution spectrum
// (paper §5.1, Figure 8).
//
// The spectrum spans two dimensions: how well the load is balanced and to
// what degree I/O costs are considered:
//
//   Blk      — even split, oblivious to both;
//   Bal      — balances load (rows proportional to CPU power), ignores I/O;
//   I-C      — keeps every node in core if possible, ignores load;
//   I-C/Bal  — first maximizes the number of in-core nodes, then balances.
//
// Experiments walk Blk -> I-C -> I-C/Bal -> Bal -> Blk with interpolated
// points in between (degenerate architectures use the shorter walks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "cluster/suite.hpp"
#include "dist/genblock.hpp"

namespace mheta::dist {

/// Everything a generator needs to know about the problem and machine.
struct DistContext {
  /// Global rows of the distributed arrays.
  std::int64_t rows = 0;

  /// Bytes per row summed over all distributed arrays (a node holding k
  /// rows needs k * bytes_per_row of memory to be fully in core).
  std::int64_t bytes_per_row = 0;

  /// Per-node relative CPU power (C_i).
  std::vector<double> cpu_powers;

  /// Per-node memory available for application data (M_i).
  std::vector<std::int64_t> memory_bytes;

  /// Per-node memory consumed by runtime buffers/halos, unavailable for
  /// local arrays. Generators subtract it when computing in-core capacity.
  std::int64_t overhead_bytes = 0;

  int nodes() const { return static_cast<int>(cpu_powers.size()); }

  /// Rows node i can hold fully in core.
  std::int64_t in_core_capacity(int i) const;

  /// Builds a context from a cluster configuration.
  static DistContext from_cluster(const cluster::ClusterConfig& c,
                                  std::int64_t rows,
                                  std::int64_t bytes_per_row,
                                  std::int64_t overhead_bytes = 0);
};

/// Blk: equal-sized blocks regardless of load or I/O.
GenBlock block_dist(const DistContext& ctx);

/// Bal: rows proportional to CPU power.
GenBlock balanced_dist(const DistContext& ctx);

/// I-C: keeps nodes in core (rows proportional to in-core capacity, capped
/// by it); overflow beyond total capacity is spread proportional to
/// capacity.
GenBlock in_core_dist(const DistContext& ctx);

/// I-C/Bal: maximizes the number of in-core nodes, then balances the load
/// among them (iterative water-filling: balanced shares clamped to in-core
/// capacity, excess redistributed by power).
GenBlock in_core_balanced_dist(const DistContext& ctx);

/// One point of the distribution spectrum.
struct SpectrumPoint {
  /// Position in [0,1] along the full walk.
  double t = 0;
  /// Anchor label ("Blk", "I-C", "I-C/Bal", "Bal") or "" for interpolated
  /// points.
  std::string label;
  GenBlock dist;
};

/// Walks the spectrum for the given architecture kind with
/// `steps_per_segment` interpolated points between consecutive anchors
/// (0 = anchors only). Consecutive duplicate distributions are kept so the
/// x-axis matches the paper's figures.
std::vector<SpectrumPoint> spectrum(const DistContext& ctx,
                                    cluster::SpectrumKind kind,
                                    int steps_per_segment);

/// Linear interpolation between two distributions with exact total.
GenBlock interpolate(const GenBlock& a, const GenBlock& b, double alpha);

}  // namespace mheta::dist
