// GEN_BLOCK data distributions (HPF; paper §3.1).
//
// A one-dimensional distribution assigns each node a contiguous block of
// rows; block sizes may differ per node. This is the object MHETA takes as
// input and the search algorithms explore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mheta::dist {

/// A 1-D GEN_BLOCK distribution: node i owns rows
/// [first_row(i), first_row(i) + count(i)).
class GenBlock {
 public:
  GenBlock() = default;

  /// Builds from per-node row counts (all must be >= 0).
  explicit GenBlock(std::vector<std::int64_t> counts);

  int nodes() const { return static_cast<int>(counts_.size()); }

  /// Rows owned by node i.
  std::int64_t count(int i) const;

  /// Global index of node i's first row.
  std::int64_t first_row(int i) const;

  /// Total rows across all nodes.
  std::int64_t total() const;

  /// The node owning global row `row`.
  int owner(std::int64_t row) const;

  const std::vector<std::int64_t>& counts() const { return counts_; }

  bool operator==(const GenBlock& other) const = default;

  /// e.g. "[100, 200, 100]".
  std::string to_string() const;

 private:
  std::vector<std::int64_t> counts_;
  std::vector<std::int64_t> firsts_;  // prefix sums, size nodes()+1
};

/// Rounds fractional shares to integers that sum exactly to `total`,
/// using the largest-remainder method. Shares must be non-negative.
std::vector<std::int64_t> apportion(const std::vector<double>& shares,
                                    std::int64_t total);

}  // namespace mheta::dist
