#include "dist/dist2d.hpp"

#include "dist/generators.hpp"

#include <sstream>

#include "util/check.hpp"

namespace mheta::dist {

Dist2D::Dist2D(NodeGrid grid, GenBlock rows, GenBlock cols)
    : grid_(grid), rows_(std::move(rows)), cols_(std::move(cols)) {
  MHETA_CHECK(grid_.p >= 1 && grid_.q >= 1);
  MHETA_CHECK_MSG(rows_.nodes() == grid_.p,
                  "row distribution has " << rows_.nodes()
                                          << " blocks, grid has " << grid_.p);
  MHETA_CHECK_MSG(cols_.nodes() == grid_.q,
                  "col distribution has " << cols_.nodes()
                                          << " blocks, grid has " << grid_.q);
}

double Dist2D::width_fraction(int rank) const {
  MHETA_CHECK(total_cols() > 0);
  return static_cast<double>(cols(rank)) /
         static_cast<double>(total_cols());
}

std::string Dist2D::to_string() const {
  std::ostringstream os;
  os << "rows " << rows_.to_string() << " x cols " << cols_.to_string();
  return os.str();
}

Dist2D block_dist_2d(const Dist2DContext& ctx) {
  const std::vector<double> row_shares(static_cast<std::size_t>(ctx.grid.p),
                                       1.0);
  const std::vector<double> col_shares(static_cast<std::size_t>(ctx.grid.q),
                                       1.0);
  return Dist2D(ctx.grid, GenBlock(apportion(row_shares, ctx.rows)),
                GenBlock(apportion(col_shares, ctx.cols)));
}

Dist2D balanced_dist_2d(const Dist2DContext& ctx) {
  MHETA_CHECK(static_cast<int>(ctx.cpu_powers.size()) == ctx.grid.nodes());
  // Mean power per grid row / per grid column.
  std::vector<double> row_power(static_cast<std::size_t>(ctx.grid.p), 0.0);
  std::vector<double> col_power(static_cast<std::size_t>(ctx.grid.q), 0.0);
  for (int r = 0; r < ctx.grid.nodes(); ++r) {
    row_power[static_cast<std::size_t>(ctx.grid.row_of(r))] +=
        ctx.cpu_powers[static_cast<std::size_t>(r)];
    col_power[static_cast<std::size_t>(ctx.grid.col_of(r))] +=
        ctx.cpu_powers[static_cast<std::size_t>(r)];
  }
  return Dist2D(ctx.grid, GenBlock(apportion(row_power, ctx.rows)),
                GenBlock(apportion(col_power, ctx.cols)));
}

std::vector<Dist2D> spectrum_2d(const Dist2DContext& ctx, int steps) {
  MHETA_CHECK(steps >= 0);
  const Dist2D blk = block_dist_2d(ctx);
  const Dist2D bal = balanced_dist_2d(ctx);
  const int points = steps + 2;  // endpoints included
  std::vector<Dist2D> family;
  family.reserve(static_cast<std::size_t>(points * points));
  for (int i = 0; i < points; ++i) {
    const double a = static_cast<double>(i) / (points - 1);
    const GenBlock rows = interpolate(blk.row_dist(), bal.row_dist(), a);
    for (int j = 0; j < points; ++j) {
      const double b = static_cast<double>(j) / (points - 1);
      family.emplace_back(ctx.grid, rows,
                          interpolate(blk.col_dist(), bal.col_dist(), b));
    }
  }
  return family;
}

}  // namespace mheta::dist
