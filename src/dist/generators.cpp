#include "dist/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace mheta::dist {

std::int64_t DistContext::in_core_capacity(int i) const {
  MHETA_CHECK(i >= 0 && i < nodes());
  MHETA_CHECK(bytes_per_row > 0);
  const std::int64_t usable =
      std::max<std::int64_t>(0, memory_bytes[static_cast<std::size_t>(i)] -
                                    overhead_bytes);
  return usable / bytes_per_row;
}

DistContext DistContext::from_cluster(const cluster::ClusterConfig& c,
                                      std::int64_t rows,
                                      std::int64_t bytes_per_row,
                                      std::int64_t overhead_bytes) {
  DistContext ctx;
  ctx.rows = rows;
  ctx.bytes_per_row = bytes_per_row;
  ctx.overhead_bytes = overhead_bytes;
  for (const auto& n : c.nodes) {
    ctx.cpu_powers.push_back(n.cpu_power);
    ctx.memory_bytes.push_back(n.memory_bytes);
  }
  return ctx;
}

GenBlock block_dist(const DistContext& ctx) {
  MHETA_CHECK(ctx.nodes() > 0);
  const std::vector<double> shares(static_cast<std::size_t>(ctx.nodes()), 1.0);
  return GenBlock(apportion(shares, ctx.rows));
}

GenBlock balanced_dist(const DistContext& ctx) {
  MHETA_CHECK(ctx.nodes() > 0);
  return GenBlock(apportion(ctx.cpu_powers, ctx.rows));
}

GenBlock in_core_dist(const DistContext& ctx) {
  const int n = ctx.nodes();
  MHETA_CHECK(n > 0);
  std::vector<double> caps(static_cast<std::size_t>(n));
  std::int64_t total_cap = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t c = ctx.in_core_capacity(i);
    caps[static_cast<std::size_t>(i)] = static_cast<double>(c);
    total_cap += c;
  }
  if (total_cap >= ctx.rows && total_cap > 0) {
    // Everyone can stay in core: give rows proportional to capacity, then
    // repair any rounding overshoot past a node's capacity.
    auto counts = apportion(caps, ctx.rows);
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto cap = static_cast<std::int64_t>(caps[idx]);
      if (counts[idx] > cap) {
        std::int64_t excess = counts[idx] - cap;
        counts[idx] = cap;
        for (int j = 0; j < n && excess > 0; ++j) {
          const auto jdx = static_cast<std::size_t>(j);
          const std::int64_t room =
              static_cast<std::int64_t>(caps[jdx]) - counts[jdx];
          const std::int64_t take = std::min(room, excess);
          counts[jdx] += take;
          excess -= take;
        }
        MHETA_CHECK(excess == 0);
      }
    }
    return GenBlock(std::move(counts));
  }
  // Total capacity insufficient: fill capacities, then spread the overflow
  // proportional to capacity (nodes with more memory also take more of the
  // out-of-core excess).
  std::vector<double> shares(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    shares[idx] = caps[idx] > 0 ? caps[idx] : 0.0;
  }
  return GenBlock(apportion(shares, ctx.rows));
}

GenBlock in_core_balanced_dist(const DistContext& ctx) {
  const int n = ctx.nodes();
  MHETA_CHECK(n > 0);
  std::vector<std::int64_t> caps(static_cast<std::size_t>(n));
  std::int64_t total_cap = 0;
  for (int i = 0; i < n; ++i) {
    caps[static_cast<std::size_t>(i)] = ctx.in_core_capacity(i);
    total_cap += caps[static_cast<std::size_t>(i)];
  }
  if (total_cap < ctx.rows) {
    // Cannot keep everyone in core; fall back to capacity-filling (the
    // in-core part) with the overflow balanced by CPU power.
    std::vector<std::int64_t> counts(caps.begin(), caps.end());
    const std::int64_t overflow = ctx.rows - total_cap;
    const auto extra = apportion(ctx.cpu_powers, overflow);
    for (int i = 0; i < n; ++i)
      counts[static_cast<std::size_t>(i)] += extra[static_cast<std::size_t>(i)];
    return GenBlock(std::move(counts));
  }
  // Water-filling: start from the balanced shares; clamp nodes at their
  // in-core capacity and redistribute the excess among unclamped nodes
  // proportional to CPU power.
  std::vector<bool> clamped(static_cast<std::size_t>(n), false);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
  std::int64_t remaining = ctx.rows;
  for (int round = 0; round < n + 1; ++round) {
    std::vector<double> shares(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i)
      if (!clamped[static_cast<std::size_t>(i)])
        shares[static_cast<std::size_t>(i)] =
            ctx.cpu_powers[static_cast<std::size_t>(i)];
    const auto tentative = apportion(shares, remaining);
    bool newly_clamped = false;
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (clamped[idx]) continue;
      if (counts[idx] + tentative[idx] > caps[idx]) {
        remaining -= caps[idx] - counts[idx];
        counts[idx] = caps[idx];
        clamped[idx] = true;
        newly_clamped = true;
      }
    }
    if (!newly_clamped) {
      for (int i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (!clamped[idx]) counts[idx] += tentative[idx];
      }
      remaining = 0;
      break;
    }
  }
  MHETA_CHECK(remaining == 0);
  return GenBlock(std::move(counts));
}

GenBlock interpolate(const GenBlock& a, const GenBlock& b, double alpha) {
  MHETA_CHECK(a.nodes() == b.nodes());
  MHETA_CHECK(a.total() == b.total());
  MHETA_CHECK(alpha >= 0.0 && alpha <= 1.0);
  std::vector<double> shares(static_cast<std::size_t>(a.nodes()));
  for (int i = 0; i < a.nodes(); ++i) {
    shares[static_cast<std::size_t>(i)] =
        (1.0 - alpha) * static_cast<double>(a.count(i)) +
        alpha * static_cast<double>(b.count(i));
  }
  return GenBlock(apportion(shares, a.total()));
}

std::vector<SpectrumPoint> spectrum(const DistContext& ctx,
                                    cluster::SpectrumKind kind,
                                    int steps_per_segment) {
  MHETA_CHECK(steps_per_segment >= 0);
  // Anchor sequence per architecture kind (paper §5.1).
  std::vector<std::pair<std::string, GenBlock>> anchors;
  switch (kind) {
    case cluster::SpectrumKind::kFull:
      anchors = {{"Blk", block_dist(ctx)},
                 {"I-C", in_core_dist(ctx)},
                 {"I-C/Bal", in_core_balanced_dist(ctx)},
                 {"Bal", balanced_dist(ctx)},
                 {"Blk", block_dist(ctx)}};
      break;
    case cluster::SpectrumKind::kBlkBal:
      anchors = {{"Blk", block_dist(ctx)}, {"Bal", balanced_dist(ctx)}};
      break;
    case cluster::SpectrumKind::kBlkIC:
      anchors = {{"Blk", block_dist(ctx)}, {"I-C", in_core_dist(ctx)}};
      break;
  }
  std::vector<SpectrumPoint> points;
  const std::size_t segments = anchors.size() - 1;
  const double denom =
      static_cast<double>(segments * static_cast<std::size_t>(steps_per_segment + 1));
  for (std::size_t s = 0; s < segments; ++s) {
    points.push_back(
        {static_cast<double>(s * static_cast<std::size_t>(steps_per_segment + 1)) /
             denom,
         anchors[s].first, anchors[s].second});
    for (int k = 1; k <= steps_per_segment; ++k) {
      const double alpha =
          static_cast<double>(k) / static_cast<double>(steps_per_segment + 1);
      points.push_back(
          {(static_cast<double>(s * static_cast<std::size_t>(steps_per_segment + 1)) +
            k) /
               denom,
           "", interpolate(anchors[s].second, anchors[s + 1].second, alpha)});
    }
  }
  points.push_back({1.0, anchors.back().first, anchors.back().second});
  return points;
}

}  // namespace mheta::dist
