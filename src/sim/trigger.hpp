// One-shot completion events.
//
// A Trigger models an asynchronous completion (e.g. a disk read finishing):
// one party fires it, any number of processes await it. Triggers are shared
// between the issuer and the waiters, so they are handled via shared_ptr.
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace mheta::sim {

/// One-shot event. Await before or after firing; both complete correctly.
class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(engine) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  /// Fires the event at the current time, waking all waiters. Idempotent
  /// firing is a bug in the caller, so it is checked.
  void fire() {
    MHETA_CHECK_MSG(!fired_, "trigger fired twice");
    fired_ = true;
    fire_time_ = engine_.now();
    for (auto w : waiters_) engine_.schedule_resume(engine_.now(), w);
    waiters_.clear();
  }

  /// Schedules fire() at absolute time `t`. The trigger must stay alive
  /// until then (waiters holding a shared_ptr is the normal pattern).
  void fire_at(Time t) {
    engine_.at(t, [this] { fire(); });
  }

  bool fired() const { return fired_; }

  /// Time at which the event fired; only meaningful once fired().
  Time fire_time() const {
    MHETA_CHECK(fired_);
    return fire_time_;
  }

  /// Awaitable: completes immediately if already fired.
  auto wait() {
    struct WaitAwaiter {
      Trigger& trig;
      bool await_ready() const noexcept { return trig.fired_; }
      void await_suspend(std::coroutine_handle<> h) const {
        trig.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return WaitAwaiter{*this};
  }

 private:
  Engine& engine_;
  bool fired_ = false;
  Time fire_time_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

using TriggerPtr = std::shared_ptr<Trigger>;

/// Creates a trigger bound to `engine`.
inline TriggerPtr make_trigger(Engine& engine) {
  return std::make_shared<Trigger>(engine);
}

}  // namespace mheta::sim
