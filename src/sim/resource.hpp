// Counting resource (semaphore) for simulated processes.
//
// Used to serialize access to contended devices. Waiters are served FIFO,
// keeping runs deterministic.
#pragma once

#include <coroutine>
#include <deque>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace mheta::sim {

/// A counting resource with FIFO admission.
class Resource {
 public:
  Resource(Engine& engine, int capacity)
      : engine_(engine), available_(capacity), capacity_(capacity) {
    MHETA_CHECK(capacity > 0);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  /// Awaitable: acquires one unit, blocking until available.
  auto acquire() {
    struct AcquireAwaiter {
      Resource& res;
      bool await_ready() {
        if (res.available_ > 0) {
          // Claim immediately; the token is returned via release().
          res.account();
          --res.available_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return AcquireAwaiter{*this};
  }

  /// Returns one unit; wakes the longest-waiting acquirer, if any.
  void release() {
    if (!waiters_.empty()) {
      // Transfer the token directly to the next waiter; the unit count in
      // use is unchanged, so no busy-integral accounting is needed.
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.schedule_resume(engine_.now(), h);
    } else {
      MHETA_CHECK_MSG(available_ < capacity_, "release without acquire");
      account();
      ++available_;
    }
  }

  int available() const { return available_; }
  int capacity() const { return capacity_; }
  int in_use() const { return capacity_ - available_; }

  /// Time-integral of units in use (unit-seconds) up to now. Utilization of
  /// an interval is busy_seconds() / (capacity * interval).
  double busy_seconds() const {
    return busy_unit_s_ +
           to_seconds(engine_.now() - last_change_) *
               static_cast<double>(in_use());
  }

 private:
  /// Folds the elapsed interval at the current occupancy into the integral;
  /// call immediately before any change to `available_`.
  void account() {
    const Time now = engine_.now();
    busy_unit_s_ +=
        to_seconds(now - last_change_) * static_cast<double>(in_use());
    last_change_ = now;
  }

  Engine& engine_;
  int available_;
  int capacity_;
  double busy_unit_s_ = 0;
  Time last_change_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII-less scoped helper: acquire in a coroutine with
///   co_await res.acquire();  ...  res.release();
/// A coroutine-friendly RAII guard is intentionally not provided: the guard
/// destructor would run at coroutine frame destruction, not at scope exit
/// visible to the engine clock.

}  // namespace mheta::sim
