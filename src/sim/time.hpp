// Simulated time.
//
// The event engine orders events by integer nanoseconds so that event order
// is exact and platform-independent; floating-point "seconds" are used only
// at the model/reporting boundary.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace mheta::sim {

/// Simulated time in nanoseconds since the start of the run.
using Time = std::int64_t;

/// A time later than any event in a realistic run.
inline constexpr Time kForever = std::numeric_limits<Time>::max() / 4;

/// Converts seconds to simulated time (rounds to nearest nanosecond).
inline Time from_seconds(double s) {
  return static_cast<Time>(std::llround(s * 1e9));
}

/// Converts microseconds to simulated time.
inline Time from_micros(double us) {
  return static_cast<Time>(std::llround(us * 1e3));
}

/// Converts simulated time to seconds.
inline double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }

}  // namespace mheta::sim
