// Coroutine process type for the simulation engine.
//
// A Process is a coroutine that performs simulated work by awaiting engine
// operations:
//
//   sim::Process worker(sim::Engine& eng) {
//     co_await eng.delay(sim::from_seconds(0.5));   // compute for 0.5 s
//     co_await channel.recv();                      // block on a message
//   }
//   eng.spawn(worker(eng));
//   eng.run();
//
// Processes are started with Engine::spawn, which takes ownership of the
// coroutine frame. Unhandled exceptions inside a process abort the run and
// are rethrown from Engine::run().
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace mheta::sim {

/// A simulated process (void-returning coroutine).
class [[nodiscard]] Process {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Engine* engine = nullptr;
    bool finished = false;
    std::exception_ptr exception;
    std::vector<std::coroutine_handle<>> joiners;

    Process get_return_object() { return Process(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(Handle h) const noexcept {
        auto& p = h.promise();
        p.finished = true;
        for (auto j : p.joiners) p.engine->schedule_resume(p.engine->now(), j);
        p.joiners.clear();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
      finished = true;
      if (engine != nullptr) engine->note_exception(exception);
    }
  };

  Process(Process&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  /// True once the coroutine has run to completion (or threw).
  bool done() const { return h_.promise().finished; }

  /// Awaitable: suspends the caller until this process completes.
  /// The awaited process must outlive the joiner (Engine::spawn guarantees
  /// this for engine-owned processes).
  auto join() {
    struct JoinAwaiter {
      Process& proc;
      bool await_ready() const noexcept { return proc.done(); }
      void await_suspend(std::coroutine_handle<> h) const {
        proc.h_.promise().joiners.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return JoinAwaiter{*this};
  }

 private:
  friend class Engine;
  explicit Process(Handle h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }

  Handle h_;
};

}  // namespace mheta::sim
