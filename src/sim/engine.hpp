// The discrete-event simulation engine.
//
// A single-threaded event loop: callbacks are executed in (time, insertion
// order). Application code rarely touches callbacks directly — it is written
// as coroutine Processes (see process.hpp) that await engine operations.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mheta::sim {

class Process;

/// Deterministic discrete-event engine.
///
/// Events at equal timestamps run in insertion order, which makes every run
/// bit-reproducible. The engine owns the coroutine frames of all spawned
/// processes; frames stay valid until the engine is destroyed.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(Time t, std::function<void()> fn);

  /// Schedules `fn` at now() + dt (dt must be >= 0).
  void in(Time dt, std::function<void()> fn);

  /// Starts a coroutine process; it first runs at the current time.
  /// Returns a handle that can be awaited (see Process::join).
  Process& spawn(Process p);

  /// Runs until the event queue is empty or stop() is called.
  /// Rethrows the first unhandled exception from any process.
  void run();

  /// Stops the run loop after the current event.
  void stop() { stopped_ = true; }

  /// Awaitable: suspends the calling process for `dt` simulated time.
  auto delay(Time dt);

  /// Total number of events executed so far (diagnostics).
  std::uint64_t events_processed() const { return events_processed_; }

  // -- internal: used by the coroutine machinery -------------------------
  void schedule_resume(Time t, std::coroutine_handle<> h);
  void note_exception(std::exception_ptr e);

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stopped_ = false;
  std::exception_ptr first_error_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
};

/// Awaitable returned by Engine::delay.
struct DelayAwaiter {
  Engine& engine;
  Time dt;
  bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.schedule_resume(engine.now() + dt, h);
  }
  void await_resume() const noexcept {}
};

inline auto Engine::delay(Time dt) { return DelayAwaiter{*this, dt}; }

}  // namespace mheta::sim
