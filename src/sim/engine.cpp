#include "sim/engine.hpp"

#include <memory>

#include "sim/process.hpp"
#include "util/check.hpp"

namespace mheta::sim {

Engine::~Engine() = default;

void Engine::at(Time t, std::function<void()> fn) {
  MHETA_CHECK_MSG(t >= now_, "event scheduled in the past: t=" << t
                                                               << " now=" << now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::in(Time dt, std::function<void()> fn) {
  MHETA_CHECK(dt >= 0);
  at(now_ + dt, std::move(fn));
}

Process& Engine::spawn(Process p) {
  auto owned = std::make_unique<Process>(std::move(p));
  Process& ref = *owned;
  ref.h_.promise().engine = this;
  schedule_resume(now_, ref.h_);
  processes_.push_back(std::move(owned));
  return ref;
}

void Engine::run() {
  while (!queue_.empty() && !stopped_ && first_error_ == nullptr) {
    // The queue stores const refs via top(); move the closure out before pop.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++events_processed_;
    ev.fn();
  }
  if (first_error_ != nullptr) {
    auto e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::schedule_resume(Time t, std::coroutine_handle<> h) {
  at(t, [h] { h.resume(); });
}

void Engine::note_exception(std::exception_ptr e) {
  if (first_error_ == nullptr) first_error_ = e;
}

}  // namespace mheta::sim
