// Typed message channels with timed delivery.
//
// Channels connect simulated processes: a sender deposits a value (now or at
// a future time, modelling network transfer), a receiver awaits it. Receive
// order is FIFO in both values and waiters, so runs are deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace mheta::sim {

/// Unbounded FIFO channel carrying values of type T.
///
/// The channel must outlive every process that uses it; in this library
/// channels are owned by the communicator, which lives for the whole run.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deposits a value at the current simulated time.
  void push(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      // Hand the value directly to the waiting receiver; the awaiter object
      // lives in the suspended coroutine frame, so the slot stays valid.
      w.slot->emplace(std::move(value));
      engine_.schedule_resume(engine_.now(), w.handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  /// Deposits a value at absolute time `t` (models in-flight delivery).
  void push_at(Time t, T value) {
    engine_.at(t, [this, v = std::move(value)]() mutable { push(std::move(v)); });
  }

  /// Awaitable: yields the next value, blocking if none is available.
  auto recv() {
    struct RecvAwaiter {
      Channel& ch;
      std::optional<T> slot;

      bool await_ready() {
        if (!ch.items_.empty()) {
          slot.emplace(std::move(ch.items_.front()));
          ch.items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch.waiters_.push_back(Waiter{h, &slot});
      }
      T await_resume() {
        MHETA_CHECK(slot.has_value());
        return std::move(*slot);
      }
    };
    return RecvAwaiter{*this, std::nullopt};
  }

  /// Values deposited but not yet received.
  std::size_t size() const { return items_.size(); }

  /// Processes currently blocked in recv().
  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  Engine& engine_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

}  // namespace mheta::sim
