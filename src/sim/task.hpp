// Composable awaitable coroutines.
//
// Process (process.hpp) is the top-level, engine-owned coroutine; Task<T> is
// the library-level building block: a lazy coroutine that starts when
// awaited and resumes its awaiter when done, optionally returning a value.
// This lets runtime operations (send, recv, file_read, ...) be written as
// coroutines and composed:
//
//   sim::Task<double> allreduce(...) { co_await send(...); ... co_return v; }
//   sim::Process app(...) { double v = co_await allreduce(...); }
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/check.hpp"

namespace mheta::sim {

namespace detail {

template <typename Promise>
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    // Symmetric transfer back to the awaiter, if any.
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine yielding a T. Must be awaited exactly once;
/// destroying an unawaited Task is allowed (the body never runs).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::TaskFinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;  // start the task body (symmetric transfer)
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        MHETA_CHECK(p.value.has_value());
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// void specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    detail::TaskFinalAwaiter<promise_type> final_suspend() noexcept {
      return {};
    }
    void return_void() noexcept {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().exception)
          std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace mheta::sim
