// The accuracy-experiment driver (paper §5.1–§5.2).
//
// For one application on one emulated architecture:
//   1. run the micro-benchmarks (calibration);
//   2. run ONE instrumented iteration under the Blk distribution with
//      forced I/O, the prefetch transform, and the recorder hooks;
//   3. build the Predictor from the harvested MhetaParams;
//   4. walk the distribution spectrum, and at every point compare the
//      predicted execution time against the "actual" (simulated) run.
//
// The percentage difference is the paper's metric: |actual - predicted|
// divided by the smaller of the two.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cluster/suite.hpp"
#include "core/model.hpp"
#include "core/structure.hpp"
#include "dist/generators.hpp"

namespace mheta::exp {

/// Simulator-effect and runtime defaults used across the evaluation.
struct ExperimentOptions {
  cluster::SimEffects effects = default_effects();
  ooc::RuntimeOptions runtime;  // overhead_bytes defaults to 1 MiB
  core::ModelOptions model;
  /// Interpolated points between spectrum anchors.
  int spectrum_steps = 0;
  /// Apply the Figure-5 prefetch-instrumentation transform during the
  /// instrumented iteration (disable only for the ablation study).
  bool prefetch_transform = true;

  static cluster::SimEffects default_effects() {
    cluster::SimEffects e;
    e.file_cache = true;
    e.cache_perturbation = true;
    e.instrumentation_noise_rel = 0.0015;
    e.runtime_noise_rel = 0.001;
    e.seed = 1;
    return e;
  }
};

/// One application workload.
struct Workload {
  std::string name;
  core::ProgramStructure program;
  int iterations = 1;
};

/// The paper's four benchmarks with their iteration counts (§5.1). When
/// `prefetch_jacobi` is set, Jacobi uses the prefetching ICLA loop (the
/// Figure-9 top-right experiment).
std::vector<Workload> paper_workloads();

/// CLI-name lookup shared by the tools and examples: jacobi | jacobi-pf |
/// cg | lanczos | rna | multigrid | isort. nullopt for unknown names.
std::optional<Workload> workload_by_name(const std::string& name);

Workload jacobi_workload(bool prefetch);
Workload cg_workload();
Workload rna_workload();
Workload lanczos_workload();
Workload multigrid_workload();
Workload isort_workload();

/// Distribution context for a workload on an architecture (the generators
/// see the true runtime overhead, so the I-C anchor is genuinely in core).
dist::DistContext make_context(const cluster::ArchConfig& arch,
                               const Workload& w,
                               const ExperimentOptions& opts);

/// Runs calibration + the instrumented Blk iteration and builds the model.
core::Predictor build_predictor(const cluster::ArchConfig& arch,
                                const Workload& w,
                                const ExperimentOptions& opts);

/// As above, but also reports the simulated wall time of the instrumented
/// Blk iteration (load phase excluded) via `instrumented_s` — the price an
/// online runtime pays to re-measure a drifted machine (mheta-adapt charges
/// it against the adaptive policy). May be null.
core::Predictor build_predictor(const cluster::ArchConfig& arch,
                                const Workload& w,
                                const ExperimentOptions& opts,
                                double* instrumented_s);

/// Result at one spectrum point.
struct PointResult {
  dist::SpectrumPoint point;
  double actual_s = 0;
  double predicted_s = 0;

  /// |actual - predicted| / min(actual, predicted).
  double pct_diff() const;
};

/// Full sweep result.
struct SweepResult {
  std::string workload;
  std::string arch;
  std::vector<PointResult> points;

  double min_diff() const;
  double avg_diff() const;
  double max_diff() const;
  /// Index of the best (fastest actual) and worst points.
  std::size_t best_actual() const;
  std::size_t worst_actual() const;
  std::size_t best_predicted() const;
};

/// Runs the predicted-vs-actual sweep for one workload on one architecture.
SweepResult run_sweep(const cluster::ArchConfig& arch, const Workload& w,
                      const ExperimentOptions& opts);

}  // namespace mheta::exp
