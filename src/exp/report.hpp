// Report formatting for the experiment binaries: turns sweep results into
// the tables/series the paper's figures plot.
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace mheta::exp {

/// The canonical five-slot x-axis of Figures 9-11:
/// Blk, I-C, I-C/Bal, Bal, Blk.
inline constexpr std::array<const char*, 5> kAxisLabels = {
    "Blk", "I-C", "I-C/Bal", "Bal", "Blk"};

/// Maps an anchor point of a sweep onto the canonical axis slot; nullopt
/// for interpolated (unlabeled) points.
std::optional<std::size_t> axis_slot(const SweepResult& sweep,
                                     std::size_t point_index);

/// Min/avg/max percentage difference per axis slot, aggregated over many
/// sweeps (the Figure 9 panels).
struct AxisAggregate {
  struct Slot {
    double min = 0, avg = 0, max = 0;
    int samples = 0;
  };
  std::array<Slot, 5> slots;

  /// Overall average over every sample in every slot.
  double overall_avg() const;
};
AxisAggregate aggregate_by_axis(const std::vector<SweepResult>& sweeps);

/// Prints one Figure-9 style panel.
void print_axis_panel(std::ostream& os, const std::string& title,
                      const AxisAggregate& agg);

/// Prints one Figure-10/11 style panel: predicted & actual per point for a
/// set of sweeps sharing an architecture.
void print_times_panel(std::ostream& os, const std::string& title,
                       const std::vector<SweepResult>& sweeps);

}  // namespace mheta::exp
