#include "exp/experiment2d.hpp"

#include <cmath>
#include <optional>

#include "apps/driver2d.hpp"
#include "apps/jacobi.hpp"
#include "instrument/calibration.hpp"
#include "instrument/recorder.hpp"
#include "util/check.hpp"

namespace mheta::exp {

Workload2D jacobi2d_workload(dist::NodeGrid grid) {
  apps::JacobiConfig cfg;
  cfg.iterations = 20;  // 2-D sweeps are denser; keep runs brisk
  Workload2D w;
  w.name = "Jacobi2D";
  w.program = apps::jacobi_program(cfg);
  w.program.name = "Jacobi2D";
  w.grid = grid;
  w.iterations = cfg.iterations;
  return w;
}

dist::Dist2DContext make_context_2d(const cluster::ArchConfig& arch,
                                    const Workload2D& w) {
  MHETA_CHECK(w.grid.nodes() == arch.cluster.size());
  dist::Dist2DContext ctx;
  ctx.grid = w.grid;
  ctx.rows = w.program.rows();
  // Columns at 8-byte elements of the first array's row.
  MHETA_CHECK(!w.program.arrays.empty());
  ctx.cols = w.program.arrays.front().row_bytes / 8;
  for (const auto& n : arch.cluster.nodes)
    ctx.cpu_powers.push_back(n.cpu_power);
  return ctx;
}

dist::Dist2D instrumented_dist_2d(const cluster::ArchConfig& arch,
                                  const Workload2D& w) {
  return dist::block_dist_2d(make_context_2d(arch, w));
}

core::Predictor build_predictor_2d(const cluster::ArchConfig& arch,
                                   const Workload2D& w,
                                   const ExperimentOptions& opts) {
  const auto cal = instrument::calibrate(arch.cluster, opts.effects);
  const dist::Dist2D blk = instrumented_dist_2d(arch, w);

  apps::RunOptions run;
  run.iterations = 1;
  run.runtime = opts.runtime;
  run.runtime.force_io = true;
  std::optional<instrument::CostRecorder> recorder;
  run.setup = [&](mpi::World& world) {
    recorder.emplace(world, cal);
    recorder->install();
  };
  (void)apps::run_program_2d(arch.cluster, opts.effects, w.program, blk, run);
  MHETA_CHECK(recorder.has_value());

  // W on rank r is its instrumented tile's rows.
  std::vector<std::int64_t> rank_rows;
  for (int r = 0; r < arch.cluster.size(); ++r)
    rank_rows.push_back(blk.rows(r));
  auto params = recorder->finalize(dist::GenBlock(rank_rows));

  std::vector<std::int64_t> memories;
  for (const auto& n : arch.cluster.nodes) memories.push_back(n.memory_bytes);
  return core::Predictor(w.program, std::move(params), std::move(memories),
                         opts.model);
}

double Point2D::pct_diff() const {
  const double lo = std::min(actual_s, predicted_s);
  return lo > 0 ? std::abs(actual_s - predicted_s) / lo : 0.0;
}

Point2D run_point_2d(const cluster::ArchConfig& arch, const Workload2D& w,
                     const core::Predictor& predictor, const dist::Dist2D& d,
                     const ExperimentOptions& opts) {
  Point2D point;
  point.dist = d;
  apps::RunOptions run;
  run.iterations = w.iterations;
  run.runtime = opts.runtime;
  point.actual_s =
      apps::run_program_2d(arch.cluster, opts.effects, w.program, d, run)
          .seconds;
  point.predicted_s =
      predictor.predict2d(d, instrumented_dist_2d(arch, w), w.iterations)
          .total_s;
  return point;
}

}  // namespace mheta::exp
