#include "exp/report.hpp"

#include <algorithm>
#include <ostream>

#include "util/table.hpp"

namespace mheta::exp {

std::optional<std::size_t> axis_slot(const SweepResult& sweep,
                                     std::size_t point_index) {
  const auto& label = sweep.points[point_index].point.label;
  if (label.empty()) return std::nullopt;
  if (label == "Blk") return point_index == 0 ? 0 : 4;
  if (label == "I-C") return 1;
  if (label == "I-C/Bal") return 2;
  if (label == "Bal") return 3;
  return std::nullopt;
}

double AxisAggregate::overall_avg() const {
  double sum = 0;
  int n = 0;
  for (const auto& s : slots) {
    sum += s.avg * s.samples;
    n += s.samples;
  }
  return n > 0 ? sum / n : 0.0;
}

AxisAggregate aggregate_by_axis(const std::vector<SweepResult>& sweeps) {
  AxisAggregate agg;
  std::array<std::vector<double>, 5> diffs;
  for (const auto& sweep : sweeps) {
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      if (const auto slot = axis_slot(sweep, i)) {
        diffs[*slot].push_back(sweep.points[i].pct_diff());
      }
    }
  }
  for (std::size_t s = 0; s < 5; ++s) {
    auto& slot = agg.slots[s];
    slot.samples = static_cast<int>(diffs[s].size());
    if (diffs[s].empty()) continue;
    slot.min = *std::min_element(diffs[s].begin(), diffs[s].end());
    slot.max = *std::max_element(diffs[s].begin(), diffs[s].end());
    double sum = 0;
    for (double d : diffs[s]) sum += d;
    slot.avg = sum / static_cast<double>(diffs[s].size());
  }
  return agg;
}

void print_axis_panel(std::ostream& os, const std::string& title,
                      const AxisAggregate& agg) {
  os << title << '\n';
  Table t({"distribution", "min", "average", "max", "samples"});
  for (std::size_t s = 0; s < 5; ++s) {
    const auto& slot = agg.slots[s];
    if (slot.samples == 0) continue;
    t.add_row({kAxisLabels[s], fmt_pct(slot.min), fmt_pct(slot.avg),
               fmt_pct(slot.max), std::to_string(slot.samples)});
  }
  t.print(os);
  os << "overall average difference: " << fmt_pct(agg.overall_avg())
     << "  (accuracy " << fmt_pct(1.0 - agg.overall_avg()) << ")\n\n";
}

void print_times_panel(std::ostream& os, const std::string& title,
                       const std::vector<SweepResult>& sweeps) {
  os << title << '\n';
  Table t({"distribution", "app", "actual (s)", "predicted (s)", "diff"});
  for (const auto& sweep : sweeps) {
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      const auto& p = sweep.points[i];
      const std::string label =
          p.point.label.empty() ? "t=" + fmt(p.point.t, 2) : p.point.label;
      std::string marker;
      if (i == sweep.best_actual()) marker += " <- best actual";
      if (i == sweep.best_predicted()) marker += " <- best predicted";
      t.add_row({label, sweep.workload, fmt(p.actual_s, 2) + marker,
                 fmt(p.predicted_s, 2), fmt_pct(p.pct_diff())});
    }
    t.add_separator();
  }
  t.print(os);
  for (const auto& sweep : sweeps) {
    const double worst = sweep.points[sweep.worst_actual()].actual_s;
    const double best = sweep.points[sweep.best_actual()].actual_s;
    os << sweep.workload << ": worst/best distribution ratio = "
       << fmt(worst / best, 2) << "x, model picks a distribution within "
       << fmt_pct(sweep.points[sweep.best_predicted()].actual_s / best - 1.0)
       << " of the true best\n";
  }
  os << '\n';
}

}  // namespace mheta::exp
