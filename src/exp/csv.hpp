// CSV export of experiment results — the series behind the paper's figures,
// in a form any plotting tool ingests.
#pragma once

#include <iosfwd>
#include <vector>

#include "exp/experiment.hpp"

namespace mheta::exp {

/// One sweep as rows: workload,arch,t,label,actual_s,predicted_s,pct_diff.
void write_sweep_csv(std::ostream& os, const SweepResult& sweep,
                     bool header = true);

/// Many sweeps concatenated under one header.
void write_sweeps_csv(std::ostream& os,
                      const std::vector<SweepResult>& sweeps);

}  // namespace mheta::exp
