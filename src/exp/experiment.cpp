#include "exp/experiment.hpp"

#include <algorithm>
#include <optional>

#include "apps/cg.hpp"
#include "apps/driver.hpp"
#include "apps/isort.hpp"
#include "apps/jacobi.hpp"
#include "apps/lanczos.hpp"
#include "apps/multigrid.hpp"
#include "apps/rna.hpp"
#include "analysis/lint.hpp"
#include "instrument/calibration.hpp"
#include "instrument/recorder.hpp"
#include "util/check.hpp"

namespace mheta::exp {

Workload jacobi_workload(bool prefetch) {
  apps::JacobiConfig cfg;
  cfg.prefetch = prefetch;
  return {prefetch ? "Jacobi+pf" : "Jacobi", apps::jacobi_program(cfg),
          cfg.iterations};
}

Workload cg_workload() {
  apps::CgConfig cfg;
  return {"CG", apps::cg_program(cfg), cfg.iterations};
}

Workload rna_workload() {
  apps::RnaConfig cfg;
  return {"RNA", apps::rna_program(cfg), cfg.iterations};
}

Workload lanczos_workload() {
  apps::LanczosConfig cfg;
  return {"Lanczos", apps::lanczos_program(cfg), cfg.iterations};
}

Workload multigrid_workload() {
  apps::MultigridConfig cfg;
  return {"Multigrid", apps::multigrid_program(cfg), cfg.iterations};
}

Workload isort_workload() {
  apps::IsortConfig cfg;
  return {"ISort", apps::isort_program(cfg), cfg.iterations};
}

std::vector<Workload> paper_workloads() {
  return {jacobi_workload(false), cg_workload(), lanczos_workload(),
          rna_workload()};
}

std::optional<Workload> workload_by_name(const std::string& name) {
  if (name == "jacobi") return jacobi_workload(false);
  if (name == "jacobi-pf") return jacobi_workload(true);
  if (name == "cg") return cg_workload();
  if (name == "lanczos") return lanczos_workload();
  if (name == "rna") return rna_workload();
  if (name == "multigrid") return multigrid_workload();
  if (name == "isort") return isort_workload();
  return std::nullopt;
}

dist::DistContext make_context(const cluster::ArchConfig& arch,
                               const Workload& w,
                               const ExperimentOptions& opts) {
  return dist::DistContext::from_cluster(arch.cluster, w.program.rows(),
                                         w.program.bytes_per_row(),
                                         opts.runtime.overhead_bytes);
}

namespace {
bool uses_prefetch(const core::ProgramStructure& p) {
  for (const auto& s : p.sections)
    for (const auto& st : s.stages)
      if (st.prefetch) return true;
  return false;
}
}  // namespace

core::Predictor build_predictor(const cluster::ArchConfig& arch,
                                const Workload& w,
                                const ExperimentOptions& opts) {
  return build_predictor(arch, w, opts, nullptr);
}

core::Predictor build_predictor(const cluster::ArchConfig& arch,
                                const Workload& w,
                                const ExperimentOptions& opts,
                                double* instrumented_s) {
  // Refuse inconsistent workload/architecture pairs before spending time
  // on calibration and the instrumented run (rules MH001-MH011).
  const dist::GenBlock blk = dist::block_dist(make_context(arch, w, opts));
  analysis::verify_distribution(w.program, arch.cluster, blk,
                                w.name + " on " + arch.cluster.name,
                                opts.model.planner_overhead_bytes,
                                opts.model.max_blocks);

  // Micro-benchmarks (separate scratch world).
  const auto cal = instrument::calibrate(arch.cluster, opts.effects);

  // One instrumented iteration at Blk: forced I/O plus the Figure-5
  // prefetch transform when the application prefetches.
  apps::RunOptions run;
  run.iterations = 1;
  run.runtime = opts.runtime;
  run.runtime.force_io = true;
  run.blocking_prefetch = opts.prefetch_transform && uses_prefetch(w.program);
  std::optional<instrument::CostRecorder> recorder;
  run.setup = [&](mpi::World& world) {
    recorder.emplace(world, cal);
    recorder->install();
  };
  const apps::RunResult instrumented =
      apps::run_program(arch.cluster, opts.effects, w.program, blk, run);
  if (instrumented_s) *instrumented_s = instrumented.seconds;
  MHETA_CHECK(recorder.has_value());
  // NOTE: the world the recorder observed is gone; finalize() only reads
  // the recorder's own accumulated state.
  auto params = recorder->finalize(blk);

  std::vector<std::int64_t> memories;
  for (const auto& n : arch.cluster.nodes) memories.push_back(n.memory_bytes);
  return core::Predictor(w.program, std::move(params), std::move(memories),
                         opts.model);
}

double PointResult::pct_diff() const {
  const double lo = std::min(actual_s, predicted_s);
  if (lo <= 0) return 0;
  return std::abs(actual_s - predicted_s) / lo;
}

double SweepResult::min_diff() const {
  double v = points.empty() ? 0 : points.front().pct_diff();
  for (const auto& p : points) v = std::min(v, p.pct_diff());
  return v;
}

double SweepResult::avg_diff() const {
  if (points.empty()) return 0;
  double sum = 0;
  for (const auto& p : points) sum += p.pct_diff();
  return sum / static_cast<double>(points.size());
}

double SweepResult::max_diff() const {
  double v = 0;
  for (const auto& p : points) v = std::max(v, p.pct_diff());
  return v;
}

std::size_t SweepResult::best_actual() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].actual_s < points[best].actual_s) best = i;
  return best;
}

std::size_t SweepResult::worst_actual() const {
  std::size_t worst = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].actual_s > points[worst].actual_s) worst = i;
  return worst;
}

std::size_t SweepResult::best_predicted() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].predicted_s < points[best].predicted_s) best = i;
  return best;
}

SweepResult run_sweep(const cluster::ArchConfig& arch, const Workload& w,
                      const ExperimentOptions& opts) {
  const auto predictor = build_predictor(arch, w, opts);
  const auto ctx = make_context(arch, w, opts);
  const auto points = dist::spectrum(ctx, arch.spectrum, opts.spectrum_steps);

  SweepResult result;
  result.workload = w.name;
  result.arch = arch.cluster.name;
  for (const auto& pt : points) {
    analysis::verify_distribution(w.program, arch.cluster, pt.dist,
                                  w.name + " @ " + pt.label,
                                  opts.model.planner_overhead_bytes,
                                  opts.model.max_blocks);
    PointResult pr;
    pr.point = pt;
    apps::RunOptions run;
    run.iterations = w.iterations;
    run.runtime = opts.runtime;
    pr.actual_s =
        apps::run_program(arch.cluster, opts.effects, w.program, pt.dist, run)
            .seconds;
    pr.predicted_s = predictor.predict(pt.dist, w.iterations).total_s;
    result.points.push_back(std::move(pr));
  }
  return result;
}

}  // namespace mheta::exp
