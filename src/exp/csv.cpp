#include "exp/csv.hpp"

#include <iomanip>
#include <ostream>

namespace mheta::exp {

namespace {
void write_rows(std::ostream& os, const SweepResult& sweep) {
  for (const auto& p : sweep.points) {
    os << sweep.workload << ',' << sweep.arch << ',' << std::setprecision(10)
       << p.point.t << ',' << p.point.label << ',' << p.actual_s << ','
       << p.predicted_s << ',' << p.pct_diff() << '\n';
  }
}
}  // namespace

void write_sweep_csv(std::ostream& os, const SweepResult& sweep, bool header) {
  if (header)
    os << "workload,arch,t,label,actual_s,predicted_s,pct_diff\n";
  write_rows(os, sweep);
}

void write_sweeps_csv(std::ostream& os,
                      const std::vector<SweepResult>& sweeps) {
  os << "workload,arch,t,label,actual_s,predicted_s,pct_diff\n";
  for (const auto& s : sweeps) write_rows(os, s);
}

}  // namespace mheta::exp
