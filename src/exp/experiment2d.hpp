// The 2-D accuracy experiment (extension; paper §5.1): same protocol as
// the 1-D harness — calibrate, instrument one iteration at the 2-D Blk
// distribution, predict candidates, compare against simulated runs.
#pragma once

#include "cluster/suite.hpp"
#include "core/model.hpp"
#include "dist/dist2d.hpp"
#include "exp/experiment.hpp"

namespace mheta::exp {

/// A 2-D workload: a program plus the node grid it runs on.
struct Workload2D {
  std::string name;
  core::ProgramStructure program;
  dist::NodeGrid grid;
  int iterations = 1;
};

/// 2-D Jacobi: the paper's Jacobi benchmark on a P x Q grid. The grid must
/// have exactly as many nodes as the target cluster.
Workload2D jacobi2d_workload(dist::NodeGrid grid);

/// Context for the 2-D generators (columns derive from the program's row
/// width at 8-byte elements).
dist::Dist2DContext make_context_2d(const cluster::ArchConfig& arch,
                                    const Workload2D& w);

/// The instrumented 2-D distribution (Blk in both dimensions).
dist::Dist2D instrumented_dist_2d(const cluster::ArchConfig& arch,
                                  const Workload2D& w);

/// Calibration + one instrumented iteration at 2-D Blk.
core::Predictor build_predictor_2d(const cluster::ArchConfig& arch,
                                   const Workload2D& w,
                                   const ExperimentOptions& opts);

/// Predicted vs actual at one 2-D distribution.
struct Point2D {
  dist::Dist2D dist;
  double actual_s = 0;
  double predicted_s = 0;
  double pct_diff() const;
};
Point2D run_point_2d(const cluster::ArchConfig& arch, const Workload2D& w,
                     const core::Predictor& predictor, const dist::Dist2D& d,
                     const ExperimentOptions& opts);

}  // namespace mheta::exp
