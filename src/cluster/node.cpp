#include "cluster/node.hpp"

namespace mheta::cluster {

bool ClusterConfig::uniform_cpu() const {
  for (const auto& n : nodes)
    if (n.cpu_power != nodes.front().cpu_power) return false;
  return true;
}

std::int64_t ClusterConfig::total_memory() const {
  std::int64_t total = 0;
  for (const auto& n : nodes) total += n.memory_bytes;
  return total;
}

ClusterConfig ClusterConfig::uniform(int n, std::string name) {
  MHETA_CHECK(n > 0);
  ClusterConfig c;
  c.name = std::move(name);
  c.nodes.assign(static_cast<std::size_t>(n), NodeSpec{});
  return c;
}

}  // namespace mheta::cluster
