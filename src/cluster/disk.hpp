// Local-disk timing model.
//
// One DiskModel per node. Requests are served in issue order (a single
// spindle): a request issued while the disk is busy queues behind the
// in-flight one. Costs are seek overhead plus per-byte latency, with an
// optional OS file-cache that accelerates re-reads of recently touched data
// (a simulator-only effect; MHETA does not model it).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cluster/node.hpp"
#include "sim/engine.hpp"
#include "sim/trigger.hpp"

namespace mheta::cluster {

/// Timing model of one node's local disk.
class DiskModel {
 public:
  DiskModel(sim::Engine& engine, const NodeSpec& spec, bool file_cache_enabled);

  /// Issues a read of `bytes` from `file` starting at `offset`.
  /// Returns the absolute completion time; the caller (a coroutine) awaits
  /// it for synchronous I/O or attaches a trigger for prefetching.
  sim::Time read(const std::string& file, std::int64_t offset,
                 std::int64_t bytes);

  /// Issues a write; same conventions as read().
  sim::Time write(const std::string& file, std::int64_t offset,
                  std::int64_t bytes);

  /// Issues an asynchronous read; the returned trigger fires at completion.
  sim::TriggerPtr read_async(const std::string& file, std::int64_t offset,
                             std::int64_t bytes);

  /// Live fault injection (mheta-adapt): multiplies seek overheads and
  /// per-byte transfer latencies of every request issued from now on. The
  /// cache-hit latency is unaffected (the OS cache is RAM, not spindle).
  /// Factors must be >= 1; call again with 1.0 to lift the slowdown.
  void set_slowdown(double seek_factor, double rate_factor);
  double seek_slowdown() const { return seek_factor_; }
  double rate_slowdown() const { return rate_factor_; }

  /// Time the disk becomes idle.
  sim::Time busy_until() const { return busy_until_; }

  /// Bytes currently resident in the file cache (all files).
  std::int64_t cached_bytes() const { return cache_used_; }

  /// Drops all cached data (e.g. between experiment repetitions).
  void invalidate_cache();

  /// Total bytes transferred, for diagnostics.
  std::int64_t bytes_read() const { return bytes_read_; }
  std::int64_t bytes_written() const { return bytes_written_; }

  /// Total seconds the spindle has been (or is scheduled to be) serving
  /// requests; requests are served serially, so busy_seconds() divided by
  /// elapsed simulated time is the disk utilization in [0,1].
  double busy_seconds() const { return busy_s_; }

 private:
  struct FileState {
    /// Longest prefix of the file that has been touched (read or written).
    std::int64_t touched_prefix = 0;
    /// Prefix of the file that the OS cache retains; fixed at first touch
    /// to whatever global cache capacity remained.
    std::int64_t resident_limit = 0;
  };

  /// Seconds to transfer a read, splitting cached vs. uncached bytes.
  double read_cost_s(const FileState& fs, std::int64_t offset,
                     std::int64_t bytes) const;

  /// Advances the busy horizon and returns the request completion time.
  sim::Time serve(double duration_s);

  FileState& state_for(const std::string& file, std::int64_t end_offset);

  /// Extends the touched prefix and accounts newly cached bytes.
  void mark_touched(FileState& fs, std::int64_t end_offset);

  sim::Engine& engine_;
  const NodeSpec spec_;
  const bool cache_enabled_;
  double seek_factor_ = 1.0;
  double rate_factor_ = 1.0;
  sim::Time busy_until_ = 0;
  double busy_s_ = 0;
  std::int64_t cache_used_ = 0;
  std::int64_t bytes_read_ = 0;
  std::int64_t bytes_written_ = 0;
  std::unordered_map<std::string, FileState> files_;
};

}  // namespace mheta::cluster
