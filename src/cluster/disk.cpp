#include "cluster/disk.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mheta::cluster {

DiskModel::DiskModel(sim::Engine& engine, const NodeSpec& spec,
                     bool file_cache_enabled)
    : engine_(engine), spec_(spec), cache_enabled_(file_cache_enabled) {}

DiskModel::FileState& DiskModel::state_for(const std::string& file,
                                           std::int64_t /*end_offset*/) {
  auto [it, inserted] = files_.try_emplace(file);
  FileState& fs = it->second;
  if (cache_enabled_ && inserted) {
    // The OS cache retains as much of this file's prefix as still fits
    // alongside what other files already occupy.
    fs.resident_limit =
        std::max<std::int64_t>(0, spec_.file_cache_bytes - cache_used_);
  }
  return fs;
}

void DiskModel::mark_touched(FileState& fs, std::int64_t end_offset) {
  if (end_offset <= fs.touched_prefix) return;
  if (cache_enabled_) {
    const std::int64_t cached_before = std::min(fs.touched_prefix, fs.resident_limit);
    const std::int64_t cached_after = std::min(end_offset, fs.resident_limit);
    cache_used_ += cached_after - cached_before;
  }
  fs.touched_prefix = end_offset;
}

double DiskModel::read_cost_s(const FileState& fs, std::int64_t offset,
                              std::int64_t bytes) const {
  std::int64_t cached = 0;
  if (cache_enabled_) {
    // Bytes in [offset, offset+bytes) that were touched before this request
    // and lie within the cache-resident prefix.
    const std::int64_t cached_end = std::min(fs.touched_prefix, fs.resident_limit);
    cached = std::clamp<std::int64_t>(cached_end - offset, 0, bytes);
  }
  const std::int64_t uncached = bytes - cached;
  return spec_.disk_read_seek_s * seek_factor_ +
         static_cast<double>(cached) * spec_.cache_read_s_per_byte +
         static_cast<double>(uncached) * spec_.disk_read_s_per_byte *
             rate_factor_;
}

void DiskModel::set_slowdown(double seek_factor, double rate_factor) {
  MHETA_CHECK_MSG(seek_factor >= 1.0 && rate_factor >= 1.0,
                  "disk slowdown factors must be >= 1 (got "
                      << seek_factor << ", " << rate_factor << ")");
  seek_factor_ = seek_factor;
  rate_factor_ = rate_factor;
}

sim::Time DiskModel::serve(double duration_s) {
  const sim::Time start = std::max(engine_.now(), busy_until_);
  const sim::Time done = start + sim::from_seconds(duration_s);
  busy_until_ = done;
  busy_s_ += duration_s;
  return done;
}

sim::Time DiskModel::read(const std::string& file, std::int64_t offset,
                          std::int64_t bytes) {
  MHETA_CHECK(offset >= 0 && bytes >= 0);
  FileState& fs = state_for(file, offset + bytes);
  const double cost = read_cost_s(fs, offset, bytes);  // pre-request state
  mark_touched(fs, offset + bytes);
  bytes_read_ += bytes;
  return serve(cost);
}

sim::Time DiskModel::write(const std::string& file, std::int64_t offset,
                           std::int64_t bytes) {
  MHETA_CHECK(offset >= 0 && bytes >= 0);
  FileState& fs = state_for(file, offset + bytes);
  mark_touched(fs, offset + bytes);  // writes populate the cache prefix too
  bytes_written_ += bytes;
  const double cost =
      spec_.disk_write_seek_s * seek_factor_ +
      static_cast<double>(bytes) * spec_.disk_write_s_per_byte * rate_factor_;
  return serve(cost);
}

sim::TriggerPtr DiskModel::read_async(const std::string& file,
                                      std::int64_t offset, std::int64_t bytes) {
  const sim::Time done = read(file, offset, bytes);
  auto trigger = sim::make_trigger(engine_);
  trigger->fire_at(done);
  return trigger;
}

void DiskModel::invalidate_cache() {
  files_.clear();
  cache_used_ = 0;
}

}  // namespace mheta::cluster
