// The emulated-architecture suite used in the paper's evaluation (§5.1).
//
// The paper tests MHETA on seventeen emulated configurations (twelve for the
// prefetching experiments), four of which are described in detail in
// Table 1: DC ("different CPUs"), IO ("I/O-induced"), HY1 and HY2 ("hybrid").
// Exact parameter values are not given in the paper, so this suite chooses
// values that reproduce the qualitative structure: CPU-power spreads around
// 2-4x, small memories that force out-of-core execution, and disk-speed
// spreads around 4x.
#pragma once

#include <string>
#include <vector>

#include "cluster/node.hpp"

namespace mheta::cluster {

/// Which slice of the distribution spectrum an architecture exercises
/// (paper §5.1): with identical CPU powers, Blk already balances the load so
/// only Blk..I-C is swept; with no memory pressure, only Blk..Bal is swept.
enum class SpectrumKind {
  kFull,    // Blk -> I-C -> I-C/Bal -> Bal -> Blk
  kBlkBal,  // Blk -> Bal (no memory pressure)
  kBlkIC,   // Blk -> I-C (identical CPU powers)
};

const char* to_string(SpectrumKind k);

/// One emulated architecture of the validation suite.
struct ArchConfig {
  ClusterConfig cluster;
  SpectrumKind spectrum = SpectrumKind::kFull;
  /// True for the twelve configurations also used in the prefetching runs.
  bool in_prefetch_suite = false;
};

/// Table 1 configurations (8 nodes each).
ArchConfig make_dc();
ArchConfig make_io();
ArchConfig make_hy1();
ArchConfig make_hy2();

/// All seventeen emulated architectures (includes the Table 1 four).
std::vector<ArchConfig> architecture_suite();

/// The twelve-architecture subset used for the prefetching experiments.
std::vector<ArchConfig> prefetch_suite();

/// Looks up a suite member by cluster name; throws if absent.
ArchConfig find_arch(const std::string& name);

}  // namespace mheta::cluster
