// Heterogeneous cluster description (paper §3.2, Figure 2).
//
// Each node has its own relative CPU power C_i, memory capacity M_i, and
// local-disk speed S_i; the network is shared. These are the exact knobs
// the paper's emulated testbed varied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace mheta::cluster {

/// Per-node hardware parameters.
struct NodeSpec {
  /// Relative CPU power C_i; 1.0 is the baseline node. A node with power 2
  /// performs the same computation in half the time.
  double cpu_power = 1.0;

  /// Physical memory available to the application for its in-core local
  /// arrays (ICLAs), in bytes (M_i).
  std::int64_t memory_bytes = 256ll << 20;

  /// Fixed per-request disk overheads: O_r and O_w in the paper.
  double disk_read_seek_s = 8e-3;
  double disk_write_seek_s = 9e-3;

  /// Per-byte transfer latency of the local disk (r_v / w_v are derived
  /// per-variable from these during the instrumented iteration).
  double disk_read_s_per_byte = 1.0 / (50e6);   // 50 MB/s
  double disk_write_s_per_byte = 1.0 / (40e6);  // 40 MB/s

  /// OS file-cache capacity. The cache accelerates re-reads in the
  /// *simulator only* — MHETA does not model it (paper §5.2.2 reports the
  /// resulting over-prediction just before the I-C distribution). Kept
  /// small relative to out-of-core working sets so the warm-cache benefit
  /// is a correction (~10% of I/O), not a collapse of the I/O cost.
  std::int64_t file_cache_bytes = 1ll << 20;

  /// Per-byte latency when a read is served from the file cache.
  double cache_read_s_per_byte = 1.0 / (400e6);  // 400 MB/s
};

/// Shared network parameters (measured by micro-benchmarks in the paper).
struct NetworkSpec {
  /// Fixed CPU overhead to send a message (o_s at power 1.0; the effective
  /// overhead on node i is send_overhead_s / C_i).
  double send_overhead_s = 30e-6;

  /// Fixed CPU overhead to receive a message (o_r, scaled like o_s).
  double recv_overhead_s = 30e-6;

  /// Wire latency per message.
  double latency_s = 60e-6;

  /// Transfer time per byte.
  double s_per_byte = 1.0 / (100e6);  // 100 MB/s

  /// Time for m bytes to travel between two nodes (excludes o_s / o_r).
  double transfer_s(std::int64_t bytes) const {
    return latency_s + static_cast<double>(bytes) * s_per_byte;
  }
};

/// Simulator-only effects that MHETA deliberately does not model; they
/// produce the error structure reported in the paper (§5.2, §5.4). With all
/// effects disabled the simulator is exactly representable by the model,
/// which the integration tests exploit.
struct SimEffects {
  /// OS file cache accelerates re-reads (limitations §5.2.2: IO config).
  bool file_cache = true;

  /// Working sets that fit the CPU cache compute slightly faster
  /// (limitation 1, §5.4).
  bool cache_perturbation = true;

  /// Relative stddev of multiplicative noise applied to each measured
  /// duration during the *instrumented* iteration (§5.2.1: up to ~1% error
  /// even at the instrumented distribution).
  double instrumentation_noise_rel = 0.0;

  /// Relative stddev of per-operation runtime jitter in every iteration.
  double runtime_noise_rel = 0.0;

  /// Master seed for all stochastic effects.
  std::uint64_t seed = 1;

  /// Returns the configuration with every unmodelled effect switched off;
  /// in this regime prediction must match simulation almost exactly.
  static SimEffects none() {
    return SimEffects{.file_cache = false,
                      .cache_perturbation = false,
                      .instrumentation_noise_rel = 0.0,
                      .runtime_noise_rel = 0.0,
                      .seed = 1};
  }
};

/// CPU cache perturbation parameters (simulator-only; see SimEffects).
struct CacheModel {
  std::int64_t effective_cache_bytes = 4ll << 20;
  /// Multiplicative speedup when the working set fits in cache.
  double in_cache_speedup = 0.03;

  /// Slowdown factor applied to compute time for a given working set.
  double factor(std::int64_t working_set_bytes, bool enabled) const {
    if (!enabled) return 1.0;
    return working_set_bytes <= effective_cache_bytes ? 1.0 - in_cache_speedup
                                                      : 1.0;
  }
};

/// A complete heterogeneous cluster.
struct ClusterConfig {
  std::string name;
  std::vector<NodeSpec> nodes;
  NetworkSpec network;
  CacheModel cache;

  int size() const { return static_cast<int>(nodes.size()); }

  const NodeSpec& node(int i) const {
    MHETA_CHECK_MSG(i >= 0 && i < size(), "node " << i << " of " << size());
    return nodes[static_cast<std::size_t>(i)];
  }

  /// True if every node has the same relative CPU power.
  bool uniform_cpu() const;

  /// Total memory across nodes.
  std::int64_t total_memory() const;

  /// Builds a homogeneous cluster of n baseline nodes.
  static ClusterConfig uniform(int n, std::string name = "uniform");
};

}  // namespace mheta::cluster
