#include "cluster/suite.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mheta::cluster {

namespace {

constexpr int kNodes = 8;

// Memory classes. Applications in the experiment harness size their primary
// arrays at ~256 MB, so a Blk distribution places ~32 MB on each of 8 nodes:
// kLargeMem nodes are comfortably in core, kSmallMem nodes are forced out of
// core, kTinyMem nodes severely so.
constexpr std::int64_t kLargeMem = 512ll << 20;
constexpr std::int64_t kSmallMem = 6ll << 20;
constexpr std::int64_t kTinyMem = 3ll << 20;

NodeSpec baseline() {
  NodeSpec n;
  n.cpu_power = 1.0;
  n.memory_bytes = kLargeMem;
  return n;
}

NodeSpec slow_disk(NodeSpec n) {
  n.disk_read_seek_s = 15e-3;
  n.disk_write_seek_s = 17e-3;
  n.disk_read_s_per_byte = 1.0 / 12e6;   // 12 MB/s
  n.disk_write_s_per_byte = 1.0 / 10e6;  // 10 MB/s
  return n;
}

NodeSpec fast_disk(NodeSpec n) {
  n.disk_read_seek_s = 4e-3;
  n.disk_write_seek_s = 5e-3;
  n.disk_read_s_per_byte = 1.0 / 100e6;  // 100 MB/s
  n.disk_write_s_per_byte = 1.0 / 80e6;  // 80 MB/s
  return n;
}

ClusterConfig cluster_of(std::string name, std::vector<NodeSpec> nodes) {
  ClusterConfig c;
  c.name = std::move(name);
  c.nodes = std::move(nodes);
  return c;
}

}  // namespace

const char* to_string(SpectrumKind k) {
  switch (k) {
    case SpectrumKind::kFull:
      return "full";
    case SpectrumKind::kBlkBal:
      return "blk-bal";
    case SpectrumKind::kBlkIC:
      return "blk-ic";
  }
  return "?";
}

ArchConfig make_dc() {
  // Table 1: "Two nodes have a lower relative CPU power, and two other
  // nodes have higher relative CPU power. The rest are unchanged."
  // No memory pressure, so the spectrum is Blk <-> Bal.
  std::vector<NodeSpec> nodes(kNodes, baseline());
  nodes[0].cpu_power = 0.5;
  nodes[1].cpu_power = 0.5;
  nodes[6].cpu_power = 2.0;
  nodes[7].cpu_power = 2.0;
  return ArchConfig{cluster_of("DC", std::move(nodes)), SpectrumKind::kBlkBal,
                    true};
}

ArchConfig make_io() {
  // Table 1: "Half of the nodes have high I/O latency and small memories,
  // but all nodes have equal relative CPU power." Spectrum is Blk <-> I-C.
  std::vector<NodeSpec> nodes(kNodes, baseline());
  for (int i = 0; i < 4; ++i) {
    nodes[static_cast<std::size_t>(i)] =
        slow_disk(nodes[static_cast<std::size_t>(i)]);
    nodes[static_cast<std::size_t>(i)].memory_bytes = kSmallMem;
  }
  return ArchConfig{cluster_of("IO", std::move(nodes)), SpectrumKind::kBlkIC,
                    true};
}

ArchConfig make_hy1() {
  // Table 1: "Four nodes have varying relative CPU powers and the other
  // four have low I/O latencies and small memories."
  std::vector<NodeSpec> nodes(kNodes, baseline());
  nodes[0].cpu_power = 0.5;
  nodes[1].cpu_power = 0.8;
  nodes[2].cpu_power = 1.5;
  nodes[3].cpu_power = 2.0;
  for (int i = 4; i < 8; ++i) {
    nodes[static_cast<std::size_t>(i)] =
        fast_disk(nodes[static_cast<std::size_t>(i)]);
    nodes[static_cast<std::size_t>(i)].memory_bytes = kSmallMem;
  }
  return ArchConfig{cluster_of("HY1", std::move(nodes)), SpectrumKind::kFull,
                    true};
}

ArchConfig make_hy2() {
  // Table 1: "Four nodes have varying relative CPU power and two nodes have
  // high I/O latencies. The other two have large memories."
  std::vector<NodeSpec> nodes(kNodes, baseline());
  nodes[0].cpu_power = 0.6;
  nodes[1].cpu_power = 0.8;
  nodes[2].cpu_power = 1.4;
  nodes[3].cpu_power = 1.8;
  for (std::size_t i : {0u, 1u, 2u, 3u})
    nodes[i].memory_bytes = kSmallMem;  // the varying-CPU nodes also feel I/O
  nodes[4] = slow_disk(nodes[4]);
  nodes[4].memory_bytes = kSmallMem;
  nodes[5] = slow_disk(nodes[5]);
  nodes[5].memory_bytes = kSmallMem;
  nodes[6].memory_bytes = kLargeMem;
  nodes[7].memory_bytes = kLargeMem;
  return ArchConfig{cluster_of("HY2", std::move(nodes)), SpectrumKind::kFull,
                    true};
}

std::vector<ArchConfig> architecture_suite() {
  std::vector<ArchConfig> suite;
  suite.push_back(make_dc());
  suite.push_back(make_io());
  suite.push_back(make_hy1());
  suite.push_back(make_hy2());

  // DC2: wider CPU spread.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    const double powers[kNodes] = {0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0, 2.5};
    for (int i = 0; i < kNodes; ++i)
      nodes[static_cast<std::size_t>(i)].cpu_power = powers[i];
    suite.push_back(
        {cluster_of("DC2", std::move(nodes)), SpectrumKind::kBlkBal, true});
  }
  // DC3: one fast node among slow ones.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (auto& n : nodes) n.cpu_power = 0.7;
    nodes[7].cpu_power = 2.8;
    suite.push_back(
        {cluster_of("DC3", std::move(nodes)), SpectrumKind::kBlkBal, false});
  }
  // DC4: two equal-sized classes.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (int i = 0; i < 4; ++i) nodes[static_cast<std::size_t>(i)].cpu_power = 0.5;
    for (int i = 4; i < 8; ++i) nodes[static_cast<std::size_t>(i)].cpu_power = 2.0;
    suite.push_back(
        {cluster_of("DC4", std::move(nodes)), SpectrumKind::kBlkBal, true});
  }
  // DC5: mild +-20% variation.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    const double powers[kNodes] = {0.8, 0.9, 1.0, 1.1, 1.2, 0.85, 1.15, 1.0};
    for (int i = 0; i < kNodes; ++i)
      nodes[static_cast<std::size_t>(i)].cpu_power = powers[i];
    suite.push_back(
        {cluster_of("DC5", std::move(nodes)), SpectrumKind::kBlkBal, false});
  }
  // IO2: a quarter of the nodes with tiny memories and very slow disks.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (std::size_t i : {0u, 1u}) {
      nodes[i] = slow_disk(nodes[i]);
      nodes[i].memory_bytes = kTinyMem;
    }
    suite.push_back(
        {cluster_of("IO2", std::move(nodes)), SpectrumKind::kBlkIC, true});
  }
  // IO3: alternating small/large memories, uniform disks.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (int i = 0; i < kNodes; i += 2)
      nodes[static_cast<std::size_t>(i)].memory_bytes = kSmallMem;
    suite.push_back(
        {cluster_of("IO3", std::move(nodes)), SpectrumKind::kBlkIC, true});
  }
  // IO4: every node memory-constrained (fully out-of-core everywhere).
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (auto& n : nodes) n.memory_bytes = kSmallMem;
    suite.push_back(
        {cluster_of("IO4", std::move(nodes)), SpectrumKind::kBlkIC, false});
  }
  // IO5: heterogeneous disk speeds, ample memory on half the nodes.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (std::size_t i : {0u, 2u, 4u, 6u}) {
      nodes[i] = slow_disk(nodes[i]);
      nodes[i].memory_bytes = kSmallMem;
    }
    for (std::size_t i : {1u, 3u, 5u, 7u}) nodes[i] = fast_disk(nodes[i]);
    suite.push_back(
        {cluster_of("IO5", std::move(nodes)), SpectrumKind::kBlkIC, true});
  }
  // HY3: CPU spread plus half the nodes with slow disks and small memories.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    const double powers[kNodes] = {0.5, 1.0, 1.5, 2.0, 0.5, 1.0, 1.5, 2.0};
    for (int i = 0; i < kNodes; ++i)
      nodes[static_cast<std::size_t>(i)].cpu_power = powers[i];
    for (std::size_t i : {4u, 5u, 6u, 7u}) {
      nodes[i] = slow_disk(nodes[i]);
      nodes[i].cpu_power = powers[i];
      nodes[i].memory_bytes = kSmallMem;
    }
    suite.push_back(
        {cluster_of("HY3", std::move(nodes)), SpectrumKind::kFull, true});
  }
  // HY4: CPU spread plus a single tiny-memory node.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    const double powers[kNodes] = {0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0};
    for (int i = 0; i < kNodes; ++i)
      nodes[static_cast<std::size_t>(i)].cpu_power = powers[i];
    nodes[0].memory_bytes = kTinyMem;
    suite.push_back(
        {cluster_of("HY4", std::move(nodes)), SpectrumKind::kFull, true});
  }
  // HY5: CPU power increases while memory decreases across the nodes.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (int i = 0; i < kNodes; ++i) {
      auto& n = nodes[static_cast<std::size_t>(i)];
      n.cpu_power = 0.5 + 0.25 * i;
      n.memory_bytes = (i < 4) ? kLargeMem : kSmallMem;
    }
    suite.push_back(
        {cluster_of("HY5", std::move(nodes)), SpectrumKind::kFull, true});
  }
  // HY6: mixed bag — fast CPUs with slow disks, slow CPUs with fast disks.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (std::size_t i : {0u, 1u}) {
      nodes[i] = slow_disk(nodes[i]);
      nodes[i].cpu_power = 2.0;
      nodes[i].memory_bytes = kSmallMem;
    }
    for (std::size_t i : {2u, 3u}) {
      nodes[i] = fast_disk(nodes[i]);
      nodes[i].cpu_power = 0.5;
      nodes[i].memory_bytes = kSmallMem;
    }
    suite.push_back(
        {cluster_of("HY6", std::move(nodes)), SpectrumKind::kFull, false});
  }
  // HY7: memory-rich slow nodes vs. memory-poor fast nodes.
  {
    std::vector<NodeSpec> nodes(kNodes, baseline());
    for (int i = 0; i < 4; ++i) {
      auto& n = nodes[static_cast<std::size_t>(i)];
      n.cpu_power = 0.6;
      n.memory_bytes = kLargeMem;
    }
    for (int i = 4; i < 8; ++i) {
      auto& n = nodes[static_cast<std::size_t>(i)];
      n.cpu_power = 2.0;
      n.memory_bytes = kTinyMem;
    }
    suite.push_back(
        {cluster_of("HY7", std::move(nodes)), SpectrumKind::kFull, false});
  }
  MHETA_CHECK(suite.size() == 17);
  return suite;
}

std::vector<ArchConfig> prefetch_suite() {
  std::vector<ArchConfig> all = architecture_suite();
  std::vector<ArchConfig> subset;
  for (auto& a : all)
    if (a.in_prefetch_suite) subset.push_back(std::move(a));
  MHETA_CHECK(subset.size() == 12);
  return subset;
}

ArchConfig find_arch(const std::string& name) {
  for (auto& a : architecture_suite())
    if (a.cluster.name == name) return a;
  MHETA_CHECK_MSG(false, "unknown architecture: " << name);
  return {};  // unreachable
}

}  // namespace mheta::cluster
