// RNA pipeline: connects the *numerical* kernel to the *execution model*.
//
// Part 1 folds an actual RNA sequence with the Nussinov dynamic program —
// the computation whose wavefront dependence structure motivates the
// pipelined benchmark (paper §5, [Cai, Malmberg & Wu]).
//
// Part 2 predicts how the pipelined out-of-core version of that computation
// would behave on each Table-1 cluster under the named distributions, using
// MHETA built from one instrumented iteration per cluster.
#include <iostream>

#include "exp/experiment.hpp"
#include "kernels/rna.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  // --- Part 1: the real computation ------------------------------------
  const std::string seq = kernels::random_rna(64, /*seed=*/2026);
  const auto fold = kernels::rna_fold(seq, /*min_loop=*/3);
  std::cout << "Nussinov fold of a 64-base sequence:\n  " << seq << "\n  "
            << fold.structure << "\n  " << fold.max_pairs
            << " base pairs\n\n";
  std::cout << "The DP table fills diagonal by diagonal — on a cluster each "
               "node owns a row\nblock and tile j of node i needs node i-1's "
               "tile-j boundary: a pipeline.\n\n";

  // --- Part 2: the execution model over clusters ------------------------
  const auto workload = exp::rna_workload();
  exp::ExperimentOptions opts;
  Table t({"cluster", "Blk (s)", "I-C (s)", "I-C/Bal (s)", "Bal (s)",
           "best"});
  for (const char* arch_name : {"DC", "IO", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    const auto predictor = exp::build_predictor(arch, workload, opts);
    const auto ctx = exp::make_context(arch, workload, opts);
    const std::pair<const char*, dist::GenBlock> candidates[] = {
        {"Blk", dist::block_dist(ctx)},
        {"I-C", dist::in_core_dist(ctx)},
        {"I-C/Bal", dist::in_core_balanced_dist(ctx)},
        {"Bal", dist::balanced_dist(ctx)},
    };
    std::vector<std::string> row = {arch_name};
    const char* best = "?";
    double best_time = 1e300;
    for (const auto& [name, d] : candidates) {
      const double s = predictor.predict(d, workload.iterations).total_s;
      row.push_back(fmt(s, 2));
      if (s < best_time) {
        best_time = s;
        best = name;
      }
    }
    row.push_back(best);
    t.add_row(row);
  }
  std::cout << "Predicted time of 10 pipelined sweeps (8 tiles each) under "
               "the named distributions:\n";
  t.print(std::cout);
  std::cout << "\nNote how the winning distribution changes with the "
               "machine — the reason a\nmodel-driven runtime system beats "
               "any static choice (paper §5.3).\n";
  return 0;
}
