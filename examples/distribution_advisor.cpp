// Distribution advisor: the runtime-system scenario from the paper's
// introduction. Given an application and a heterogeneous cluster, find an
// effective GEN_BLOCK data distribution *without* running the candidates —
// one instrumented iteration builds the model, then the search algorithms
// from the companion paper explore the space using MHETA as the evaluation
// function. The chosen distribution is finally validated with a real
// (simulated) run.
//
// Usage: ./build/examples/distribution_advisor [arch] [app]
//   arch: DC | IO | HY1 | HY2 | ... (default HY2)
//   app:  jacobi | cg | lanczos | rna | multigrid (default lanczos)
#include <iostream>
#include <string>

#include "apps/driver.hpp"
#include "exp/experiment.hpp"
#include "obs/convergence.hpp"
#include "obs/registry.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "util/table.hpp"

using namespace mheta;

int main(int argc, char** argv) {
  const std::string arch_name = argc > 1 ? argv[1] : "HY2";
  const std::string app_name = argc > 2 ? argv[2] : "lanczos";

  const auto arch = cluster::find_arch(arch_name);
  const auto workload =
      exp::workload_by_name(app_name).value_or(exp::lanczos_workload());
  exp::ExperimentOptions opts;

  std::cout << "Advising a data distribution for " << workload.name << " on "
            << arch.cluster.name << "...\n\n";

  // Build the model from one instrumented Blk iteration. All algorithms
  // share one memoized objective (searches revisit candidates) and one
  // convergence recorder, both reporting into the metrics registry.
  const auto predictor = exp::build_predictor(arch, workload, opts);
  const auto ctx = exp::make_context(arch, workload, opts);
  obs::MetricsRegistry registry;
  const search::CachingObjective cached(
      search::make_objective(predictor, workload.iterations, arch.cluster),
      4096, &registry);
  const obs::ConvergenceRecorder recorder{search::Objective(cached)};
  const search::Objective objective{recorder};

  auto actual_of = [&](const dist::GenBlock& d) {
    apps::RunOptions run;
    run.iterations = workload.iterations;
    run.runtime = opts.runtime;
    return apps::run_program(arch.cluster, opts.effects, workload.program, d,
                             run)
        .seconds;
  };

  // Let all four algorithms propose.
  const search::SpectrumSpace space(ctx, arch.spectrum);
  struct Proposal {
    const char* algo;
    search::SearchResult result;
  };
  std::vector<Proposal> proposals;
  proposals.push_back({"GBS", search::gbs(space, objective)});
  proposals.push_back({"genetic", search::genetic(ctx, objective, {}, 1)});
  proposals.push_back(
      {"annealing", search::simulated_annealing(dist::block_dist(ctx),
                                                objective, {}, 1)});
  proposals.push_back({"random", search::random_search(space, objective, 40, 1)});

  Table t({"algorithm", "model evals", "predicted (s)", "validated (s)"});
  const Proposal* winner = &proposals[0];
  for (const auto& p : proposals) {
    t.add_row({p.algo, std::to_string(p.result.evaluations),
               fmt(p.result.best_time, 2), fmt(actual_of(p.result.best), 2)});
    if (p.result.best_time < winner->result.best_time) winner = &p;
  }
  t.print(std::cout);

  const double baseline = actual_of(dist::block_dist(ctx));
  const double chosen = actual_of(winner->result.best);
  std::cout << "\nrecommended (" << winner->algo
            << "): " << winner->result.best.to_string() << '\n'
            << "naive Blk distribution: " << fmt(baseline, 2)
            << " s; recommended: " << fmt(chosen, 2) << " s ("
            << fmt(baseline / chosen, 2) << "x faster)\n";

  // Observability summary: how much work the memoized objective saved and
  // how quickly the combined search converged.
  const auto series = recorder.series();
  std::size_t to_best = series.size();
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].best == recorder.best()) {
      to_best = i + 1;
      break;
    }
  }
  std::cout << "\nobjective cache: " << cached.hits() << " hits / "
            << cached.misses() << " misses ("
            << fmt_pct(cached.hit_rate()) << " hit rate)\n"
            << "convergence: best predicted time " << fmt(recorder.best(), 2)
            << " s reached after " << to_best << " of "
            << recorder.evaluations() << " evaluations\n";
  return 0;
}
