// Quickstart: the full MHETA workflow in ~60 lines.
//
//   1. describe a heterogeneous cluster,
//   2. pick an application (Jacobi iteration),
//   3. run the micro-benchmarks + one instrumented iteration to build the
//      model,
//   4. ask MHETA to predict candidate data distributions,
//   5. check the predictions against "actual" (simulated) runs.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "apps/driver.hpp"
#include "exp/experiment.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  // 1. The HY1 architecture from the paper's Table 1: four nodes with
  //    varying CPU power, four with fast disks but small memories.
  const cluster::ArchConfig arch = cluster::make_hy1();

  // 2. Jacobi iteration: one read+write grid, halo exchange, a convergence
  //    reduction; 100 iterations.
  const exp::Workload workload = exp::jacobi_workload(/*prefetch=*/false);

  // 3. Calibrate and instrument one iteration under the Blk distribution;
  //    this produces the parameterized model (everything the paper's
  //    MPI-Jack hooks harvest).
  exp::ExperimentOptions opts;  // paper-default simulator effects
  const core::Predictor predictor = exp::build_predictor(arch, workload, opts);

  // 4+5. Evaluate the four named distributions.
  const dist::DistContext ctx = exp::make_context(arch, workload, opts);
  Table table({"distribution", "predicted (s)", "actual (s)", "difference"});
  for (const auto& [name, d] :
       {std::pair{"Blk", dist::block_dist(ctx)},
        std::pair{"I-C", dist::in_core_dist(ctx)},
        std::pair{"I-C/Bal", dist::in_core_balanced_dist(ctx)},
        std::pair{"Bal", dist::balanced_dist(ctx)}}) {
    const double predicted =
        predictor.predict(d, workload.iterations).total_s;

    apps::RunOptions run;
    run.iterations = workload.iterations;
    run.runtime = opts.runtime;
    const double actual =
        apps::run_program(arch.cluster, opts.effects, workload.program, d, run)
            .seconds;

    const double diff = std::abs(actual - predicted) / std::min(actual, predicted);
    table.add_row({name, fmt(predicted, 2), fmt(actual, 2), fmt_pct(diff)});
  }

  std::cout << "MHETA quickstart — " << workload.name << " on "
            << arch.cluster.name << " (8 heterogeneous nodes)\n\n";
  table.print(std::cout);
  std::cout << "\nThe model was built from ONE instrumented iteration at Blk "
               "and predicts the\nother distributions without ever running "
               "them.\n";
  return 0;
}
