// Custom machine: describe your own heterogeneous cluster from scratch and
// explore an application on it — the path a downstream user takes when the
// built-in architecture suite doesn't match their hardware.
//
// The cluster below is a deliberately lopsided "lab closet": one modern
// workstation, three mid-range boxes, and two salvaged machines with slow
// disks and little memory.
#include <iostream>

#include "apps/driver.hpp"
#include "apps/multigrid.hpp"
#include "cluster/node.hpp"
#include "cluster/suite.hpp"
#include "exp/experiment.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  // --- 1. Describe the machine ------------------------------------------
  cluster::ClusterConfig machine;
  machine.name = "lab-closet";

  cluster::NodeSpec workstation;
  workstation.cpu_power = 3.0;
  workstation.memory_bytes = 1024ll << 20;
  workstation.disk_read_s_per_byte = 1.0 / 120e6;
  workstation.disk_write_s_per_byte = 1.0 / 100e6;
  machine.nodes.push_back(workstation);

  cluster::NodeSpec midrange;  // defaults are the baseline node
  for (int i = 0; i < 3; ++i) machine.nodes.push_back(midrange);

  cluster::NodeSpec salvage;
  salvage.cpu_power = 0.6;
  salvage.memory_bytes = 8ll << 20;
  salvage.disk_read_seek_s = 18e-3;
  salvage.disk_read_s_per_byte = 1.0 / 10e6;
  salvage.disk_write_s_per_byte = 1.0 / 8e6;
  machine.nodes.push_back(salvage);
  machine.nodes.push_back(salvage);

  machine.network.latency_s = 90e-6;          // old switch
  machine.network.s_per_byte = 1.0 / 60e6;

  const cluster::ArchConfig arch{machine, cluster::SpectrumKind::kFull,
                                 false};

  // --- 2. Pick the application: a multigrid solver ----------------------
  apps::MultigridConfig mg;
  mg.iterations = 10;
  const exp::Workload workload{"Multigrid", apps::multigrid_program(mg),
                               mg.iterations};

  // --- 3. Model it and search for a distribution ------------------------
  exp::ExperimentOptions opts;
  const auto predictor = exp::build_predictor(arch, workload, opts);
  const auto ctx = exp::make_context(arch, workload, opts);
  const search::Objective objective =
      search::make_objective(predictor, workload.iterations, machine);
  const auto pick = search::genetic(ctx, objective, {}, /*seed=*/1);

  // --- 4. Compare against the naive choices -----------------------------
  auto actual_of = [&](const dist::GenBlock& d) {
    apps::RunOptions run;
    run.iterations = workload.iterations;
    run.runtime = opts.runtime;
    return apps::run_program(machine, opts.effects, workload.program, d, run)
        .seconds;
  };
  Table t({"distribution", "rows per node", "predicted (s)", "actual (s)"});
  const std::pair<const char*, dist::GenBlock> rows[] = {
      {"Blk (even split)", dist::block_dist(ctx)},
      {"Bal (by CPU power)", dist::balanced_dist(ctx)},
      {"genetic pick", pick.best},
  };
  for (const auto& [name, d] : rows) {
    t.add_row({name, d.to_string(),
               fmt(predictor.predict(d, workload.iterations).total_s, 2),
               fmt(actual_of(d), 2)});
  }
  std::cout << "Multigrid (10 V-cycles) on the 'lab-closet' cluster: 1 "
               "workstation, 3 mid-range\nnodes, 2 salvaged boxes with slow "
               "disks and 8 MiB of usable memory.\n\n";
  t.print(std::cout);
  std::cout << "\nThe genetic search ran " << pick.evaluations
            << " model evaluations (no application runs) to find its pick.\n";
  return 0;
}
