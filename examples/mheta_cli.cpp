// mheta_cli: a small command-line front end to the library — list the
// emulated architectures, inspect one, export an application's structure
// file, build and save a model parameter file, and run a prediction sweep.
//
// Usage:
//   mheta_cli archs
//   mheta_cli show <arch>
//   mheta_cli structure <app>                 (writes the structure file to stdout)
//   mheta_cli instrument <arch> <app> <file>  (runs calibration + the
//                                              instrumented iteration, saves
//                                              MhetaParams to <file>)
//   mheta_cli sweep <arch> <app> [steps]      (predicted vs actual table)
#include <fstream>
#include <iostream>
#include <string>

#include "apps/driver.hpp"
#include "core/structure_io.hpp"
#include "dist/generators.hpp"
#include "instrument/gantt.hpp"
#include "exp/experiment.hpp"
#include "util/table.hpp"

using namespace mheta;

namespace {

exp::Workload workload_by_name(const std::string& name) {
  if (auto w = exp::workload_by_name(name)) return std::move(*w);
  std::cerr << "unknown app '" << name
            << "' (try: jacobi jacobi-pf cg lanczos rna multigrid isort)\n";
  std::exit(2);
}

int cmd_archs() {
  Table t({"name", "nodes", "spectrum", "prefetch suite"});
  for (const auto& a : cluster::architecture_suite()) {
    t.add_row({a.cluster.name, std::to_string(a.cluster.size()),
               cluster::to_string(a.spectrum),
               a.in_prefetch_suite ? "yes" : "no"});
  }
  t.print(std::cout);
  return 0;
}

int cmd_show(const std::string& name) {
  const auto arch = cluster::find_arch(name);
  Table t({"node", "cpu", "memory (MiB)", "read MB/s", "write MB/s",
           "seek r/w (ms)"});
  for (int i = 0; i < arch.cluster.size(); ++i) {
    const auto& n = arch.cluster.node(i);
    t.add_row({std::to_string(i), fmt(n.cpu_power, 2),
               fmt(static_cast<double>(n.memory_bytes) / (1 << 20), 0),
               fmt(1.0 / n.disk_read_s_per_byte / 1e6, 0),
               fmt(1.0 / n.disk_write_s_per_byte / 1e6, 0),
               fmt(n.disk_read_seek_s * 1e3, 0) + "/" +
                   fmt(n.disk_write_seek_s * 1e3, 0)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_structure(const std::string& app) {
  const auto w = workload_by_name(app);
  core::save_structure(std::cout, w.program);
  return 0;
}

int cmd_instrument(const std::string& arch_name, const std::string& app,
                   const std::string& path) {
  const auto arch = cluster::find_arch(arch_name);
  const auto w = workload_by_name(app);
  exp::ExperimentOptions opts;
  const auto predictor = exp::build_predictor(arch, w, opts);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  predictor.params().save(out);
  std::cout << "wrote MhetaParams for " << w.name << " on "
            << arch.cluster.name << " to " << path << '\n';
  return 0;
}

int cmd_gantt(const std::string& arch_name, const std::string& app) {
  const auto arch = cluster::find_arch(arch_name);
  const auto w = workload_by_name(app);
  exp::ExperimentOptions opts;
  const auto d = dist::block_dist(exp::make_context(arch, w, opts));
  std::shared_ptr<instrument::TraceCollector> trace;
  apps::RunOptions run;
  run.iterations = 1;
  run.runtime = opts.runtime;
  run.setup = [&trace](mpi::World& world) {
    trace = std::make_shared<instrument::TraceCollector>(world);
    trace->install();
  };
  (void)apps::run_program(arch.cluster, opts.effects, w.program, d, run);
  std::cout << "One iteration of " << w.name << " on " << arch.cluster.name
            << " under Blk:\n";
  instrument::render_gantt(std::cout, *trace, arch.cluster.size());
  return 0;
}

int cmd_sweep(const std::string& arch_name, const std::string& app,
              int steps) {
  const auto arch = cluster::find_arch(arch_name);
  const auto w = workload_by_name(app);
  exp::ExperimentOptions opts;
  opts.spectrum_steps = steps;
  const auto sweep = exp::run_sweep(arch, w, opts);
  Table t({"distribution", "actual (s)", "predicted (s)", "diff"});
  for (const auto& p : sweep.points) {
    t.add_row({p.point.label.empty() ? "t=" + fmt(p.point.t, 2)
                                     : p.point.label,
               fmt(p.actual_s, 2), fmt(p.predicted_s, 2),
               fmt_pct(p.pct_diff())});
  }
  t.print(std::cout);
  std::cout << "average difference " << fmt_pct(sweep.avg_diff())
            << ", max " << fmt_pct(sweep.max_diff()) << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "archs") return cmd_archs();
  if (cmd == "show" && argc > 2) return cmd_show(argv[2]);
  if (cmd == "structure" && argc > 2) return cmd_structure(argv[2]);
  if (cmd == "instrument" && argc > 4)
    return cmd_instrument(argv[2], argv[3], argv[4]);
  if (cmd == "sweep" && argc > 3)
    return cmd_sweep(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 1);
  if (cmd == "gantt" && argc > 3) return cmd_gantt(argv[2], argv[3]);
  std::cerr << "usage:\n"
               "  mheta_cli archs\n"
               "  mheta_cli show <arch>\n"
               "  mheta_cli structure <app>\n"
               "  mheta_cli instrument <arch> <app> <params-file>\n"
               "  mheta_cli sweep <arch> <app> [steps]\n"
               "  mheta_cli gantt <arch> <app>\n";
  return 2;
}
