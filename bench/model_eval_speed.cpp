// Headline H2: the cost of evaluating one distribution in MHETA.
// The paper reports about 5.4 ms per distribution on 2005 hardware and
// argues this is cheap enough to use on the fly; this benchmark measures
// our implementation (expected to be far faster on modern hardware — the
// claim to preserve is the order of magnitude: "cheap enough for on-line
// search", i.e. sub-milliseconds per candidate).
#include <benchmark/benchmark.h>

#include "exp/experiment.hpp"
#include "obs/registry.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"

using namespace mheta;

namespace {

struct Setup {
  core::Predictor predictor;
  std::vector<dist::GenBlock> candidates;
};

Setup make_setup(const char* arch_name, exp::Workload w,
                 core::ModelOptions model = {}) {
  exp::ExperimentOptions opts;
  opts.model = model;
  const auto arch = cluster::find_arch(arch_name);
  auto predictor = exp::build_predictor(arch, w, opts);
  const auto ctx = exp::make_context(arch, w, opts);
  std::vector<dist::GenBlock> candidates;
  for (const auto& p :
       dist::spectrum(ctx, arch.spectrum, /*steps_per_segment=*/15))
    candidates.push_back(p.dist);
  return Setup{std::move(predictor), std::move(candidates)};
}

void BM_PredictJacobi(benchmark::State& state) {
  auto setup = make_setup("HY1", exp::jacobi_workload(false));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(
        setup.predictor.predict(d, /*iterations=*/100).total_s);
  }
  state.SetLabel("Jacobi/HY1, 100 iterations per evaluation");
}
BENCHMARK(BM_PredictJacobi);

void BM_PredictJacobiNoFastPath(benchmark::State& state) {
  // The naive loop the fast path replaces: no steady-state shortcut, no
  // plan memoization. Kept as the denominator of the per-PR speedup.
  core::ModelOptions model;
  model.steady_state_shortcut = false;
  model.plan_cache_capacity = 0;
  auto setup = make_setup("HY1", exp::jacobi_workload(false), model);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(
        setup.predictor.predict(d, /*iterations=*/100).total_s);
  }
  state.SetLabel("Jacobi/HY1, 100 iterations, fast path disabled");
}
BENCHMARK(BM_PredictJacobiNoFastPath);

void BM_CachingObjectiveJacobi(benchmark::State& state) {
  // Repeated candidates through the search-facing cache: the steady cost of
  // re-encountering a distribution during a search.
  auto setup = make_setup("HY1", exp::jacobi_workload(false));
  const search::CachingObjective objective(
      [&](const dist::GenBlock& d) {
        return setup.predictor.predict(d, /*iterations=*/100).total_s;
      });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(objective(d));
  }
  state.SetLabel("Jacobi/HY1 via CachingObjective (all hits after lap 1)");
}
BENCHMARK(BM_CachingObjectiveJacobi);

void BM_PredictJacobiWithMetrics(benchmark::State& state) {
  // Same workload as BM_PredictJacobi but with a MetricsRegistry installed:
  // the plan LRU counts its hits and misses. The instrumentation contract
  // is that this stays within noise of the uninstrumented run (the hot loop
  // only pays null checks plus relaxed atomic adds on cache misses).
  obs::MetricsRegistry registry;
  core::ModelOptions model;
  model.metrics = &registry;
  auto setup = make_setup("HY1", exp::jacobi_workload(false), model);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(
        setup.predictor.predict(d, /*iterations=*/100).total_s);
  }
  state.SetLabel("Jacobi/HY1, 100 iterations, metrics registry installed");
}
BENCHMARK(BM_PredictJacobiWithMetrics);

void BM_PredictRnaPipeline(benchmark::State& state) {
  auto setup = make_setup("HY1", exp::rna_workload());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(
        setup.predictor.predict(d, /*iterations=*/10).total_s);
  }
  state.SetLabel("RNA/HY1 (pipelined, 8 tiles), 10 iterations");
}
BENCHMARK(BM_PredictRnaPipeline);

void BM_DeltaEvalComponents(benchmark::State& state) {
  // The scalar incremental path with its timing split: `table_ms` is the
  // cost-table work (row builds + cache assembly), `clock_ms` the clock-
  // propagation loop, both per 1k evaluations. The split is what the lane
  // batch attacks — it amortizes table work across lanes and vectorizes
  // the loop — so these two counters are the denominators of the
  // BENCH_search.json lane_vs_delta ratios.
  auto setup = make_setup("HY1", exp::jacobi_workload(false));
  core::DeltaOptions dopts;
  dopts.time_components = true;
  const search::DeltaObjective delta(setup.predictor, /*iterations=*/100,
                                     dopts);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(delta(d));
  }
  const core::DeltaStats ds = delta.stats();
  const double evals = static_cast<double>(
      ds.evaluations > 0 ? ds.evaluations : 1);
  state.counters["table_ms_per_1k"] =
      1e3 * static_cast<double>(ds.table_ns) * 1e-6 / evals;
  state.counters["clock_ms_per_1k"] =
      1e3 * static_cast<double>(ds.loop_ns) * 1e-6 / evals;
  state.SetLabel("Jacobi/HY1 delta path, table-work vs clock-loop split");
}
BENCHMARK(BM_DeltaEvalComponents);

void BM_LaneBatchedEval(benchmark::State& state) {
  // The lane-batched path on population-shaped batches (one full lane
  // group per call). Per-iteration time is per BATCH; `evals_per_s` and
  // the component counters normalize per candidate for comparison against
  // BM_DeltaEvalComponents.
  auto setup = make_setup("HY1", exp::jacobi_workload(false));
  core::LaneOptions lopts;
  lopts.time_components = true;
  const search::LaneObjective lanes(setup.predictor, /*iterations=*/100,
                                    lopts);
  const std::size_t width = static_cast<std::size_t>(lopts.lane_width);
  std::vector<dist::GenBlock> batch;
  std::size_t i = 0;
  for (auto _ : state) {
    batch.clear();
    for (std::size_t l = 0; l < width; ++l)
      batch.push_back(setup.candidates[i++ % setup.candidates.size()]);
    benchmark::DoNotOptimize(lanes.evaluate(batch));
  }
  const core::LaneStats ls = lanes.stats();
  const double evals = static_cast<double>(
      ls.lane_evaluations > 0 ? ls.lane_evaluations : 1);
  state.counters["evals_per_s"] = benchmark::Counter(
      static_cast<double>(width), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["table_ms_per_1k"] =
      1e3 * static_cast<double>(ls.assemble_ns) * 1e-6 / evals;
  state.counters["clock_ms_per_1k"] =
      1e3 * static_cast<double>(ls.sweep_ns) * 1e-6 / evals;
  state.SetLabel("Jacobi/HY1 lane-batched, one full lane group per call");
}
BENCHMARK(BM_LaneBatchedEval);

void BM_PredictSingleIteration(benchmark::State& state) {
  auto setup = make_setup("IO", exp::cg_workload());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& d = setup.candidates[i++ % setup.candidates.size()];
    benchmark::DoNotOptimize(setup.predictor.predict(d, 1).total_s);
  }
  state.SetLabel("CG/IO, single iteration (paper: ~5.4 ms in 2005)");
}
BENCHMARK(BM_PredictSingleIteration);

}  // namespace

BENCHMARK_MAIN();
