// Extension bench (paper §6): "We are currently implementing more
// applications (including Multigrid) to further increase the types of
// applications to test MHETA with a wider range of relative communication,
// computation, and I/O costs."
//
// This binary runs the future-work validation the paper promised:
//   - Multigrid (multi-section V-cycle, per-level nearest-neighbor comm);
//   - prefetching variants of CG, Lanczos and RNA (the paper only
//     prefetched Jacobi).
// Accuracy is reported per architecture exactly like Figure 9.
#include <iostream>

#include "apps/cg.hpp"
#include "apps/lanczos.hpp"
#include "apps/rna.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/table.hpp"

using namespace mheta;

namespace {

exp::Workload prefetch_cg() {
  // CG's sparse matrix is read-only — the prefetch-friendly case.
  apps::CgConfig cfg;
  auto program = apps::cg_program(cfg);
  for (auto& s : program.sections)
    for (auto& st : s.stages)
      if (!st.read_vars.empty()) st.prefetch = true;
  program.name = "CG+pf";
  return {"CG+pf", std::move(program), cfg.iterations};
}

exp::Workload prefetch_lanczos() {
  apps::LanczosConfig cfg;
  cfg.prefetch = true;
  return {"Lanczos+pf", apps::lanczos_program(cfg), cfg.iterations};
}

exp::Workload prefetch_rna() {
  apps::RnaConfig cfg;
  cfg.prefetch = true;
  return {"RNA+pf", apps::rna_program(cfg), cfg.iterations};
}

}  // namespace

int main() {
  exp::ExperimentOptions opts;

  Table t({"workload", "architectures", "avg diff", "max diff",
           "accuracy"});
  const exp::Workload workloads[] = {exp::multigrid_workload(),
                                     exp::isort_workload(), prefetch_cg(),
                                     prefetch_lanczos(), prefetch_rna()};
  for (const auto& w : workloads) {
    std::vector<exp::SweepResult> sweeps;
    for (const auto& arch : cluster::prefetch_suite())
      sweeps.push_back(exp::run_sweep(arch, w, opts));
    const auto agg = exp::aggregate_by_axis(sweeps);
    double max_diff = 0;
    for (const auto& s : sweeps) max_diff = std::max(max_diff, s.max_diff());
    t.add_row({w.name, std::to_string(sweeps.size()),
               fmt_pct(agg.overall_avg()), fmt_pct(max_diff),
               fmt_pct(1.0 - agg.overall_avg())});
  }
  std::cout << "=== Extensions: the paper's §6 future-work applications "
               "===\n";
  t.print(std::cout);
  std::cout << "Multigrid exercises multi-section V-cycles, ISort the "
               "all-to-all bucket\nexchange, and the +pf rows prefetch "
               "applications the paper never prefetched.\nMHETA's ~98% "
               "accuracy extends to all of them.\n";
  return 0;
}
