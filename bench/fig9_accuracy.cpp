// Figure 9: minimum, average and maximum percentage difference between
// predicted and actual execution times —
//   top-left:  all four applications, no prefetching, 17 architectures;
//   top-right: Jacobi with prefetching, 12 architectures;
//   bottom:    the best case (RNA) and worst case (CG) individually.
// Also prints the headline average-accuracy number (paper: ~98%).
#include <iostream>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  exp::ExperimentOptions opts;  // the paper's effect defaults

  const auto suite = cluster::architecture_suite();
  std::vector<exp::SweepResult> all, rna_only, cg_only;
  for (const auto& arch : suite) {
    for (const auto& w : exp::paper_workloads()) {
      auto sweep = exp::run_sweep(arch, w, opts);
      if (w.name == "RNA") rna_only.push_back(sweep);
      if (w.name == "CG") cg_only.push_back(sweep);
      all.push_back(std::move(sweep));
    }
  }

  std::cout << "=== Figure 9 (top left): all applications without "
               "prefetching, "
            << suite.size() << " architectures ===\n";
  const auto agg_all = exp::aggregate_by_axis(all);
  exp::print_axis_panel(std::cout, "percent difference of actual vs predicted",
                        agg_all);

  std::vector<exp::SweepResult> prefetch_sweeps;
  const auto prefetch_archs = cluster::prefetch_suite();
  const auto jacobi_pf = exp::jacobi_workload(true);
  for (const auto& arch : prefetch_archs)
    prefetch_sweeps.push_back(exp::run_sweep(arch, jacobi_pf, opts));

  std::cout << "=== Figure 9 (top right): prefetching Jacobi, "
            << prefetch_archs.size() << " architectures ===\n";
  const auto agg_pf = exp::aggregate_by_axis(prefetch_sweeps);
  exp::print_axis_panel(std::cout, "percent difference of actual vs predicted",
                        agg_pf);

  std::cout << "=== Figure 9 (bottom left): RNA (best case) ===\n";
  exp::print_axis_panel(std::cout, "percent difference of actual vs predicted",
                        exp::aggregate_by_axis(rna_only));

  std::cout << "=== Figure 9 (bottom right): CG (worst case) ===\n";
  exp::print_axis_panel(std::cout, "percent difference of actual vs predicted",
                        exp::aggregate_by_axis(cg_only));

  std::cout << "=== Headline (paper: \"on average 98% accurate\") ===\n"
            << "without prefetching: accuracy "
            << fmt_pct(1.0 - agg_all.overall_avg()) << '\n'
            << "prefetching Jacobi:  accuracy "
            << fmt_pct(1.0 - agg_pf.overall_avg()) << '\n';
  return 0;
}
