// Ablation A2: the in-core/out-of-core heuristic (paper limitation 2, §5.4).
//
// MHETA's planner assumes the whole node memory is available for local
// arrays, while the runtime reserves buffer/halo space; near the memory
// boundary the model therefore classifies a variable as in core that the
// runtime streams from disk, predicting zero I/O where I/O occurs. This
// binary compares the paper's heuristic against an "informed" model that
// knows the runtime overhead, quantifying how much of the residual error
// the simplistic heuristic is responsible for.
#include <iostream>

#include "exp/experiment.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  Table t({"arch", "app", "model heuristic", "avg diff", "max diff",
           "underpredicted pts"});
  for (const char* arch_name : {"IO", "IO3", "HY1", "HY5"}) {
    const auto arch = cluster::find_arch(arch_name);
    for (const auto& w : {exp::jacobi_workload(false), exp::cg_workload()}) {
      for (const bool informed : {false, true}) {
        exp::ExperimentOptions opts;
        opts.spectrum_steps = 5;  // dense sweep to hit the boundary region
        // Exaggerate the runtime's reserved memory so the sweep reliably
        // lands in the misclassification window this ablation studies.
        opts.runtime.overhead_bytes = 1ll << 20;
        if (informed)
          opts.model.planner_overhead_bytes = opts.runtime.overhead_bytes;
        const auto sweep = exp::run_sweep(arch, w, opts);
        int underpredicted = 0;
        for (const auto& p : sweep.points)
          if (p.predicted_s < p.actual_s * 0.98) ++underpredicted;
        t.add_row({arch_name, w.name,
                   informed ? "informed (knows overhead)" : "paper (simple)",
                   fmt_pct(sweep.avg_diff()), fmt_pct(sweep.max_diff()),
                   std::to_string(underpredicted) + "/" +
                       std::to_string(sweep.points.size())});
      }
      t.add_separator();
    }
  }
  std::cout << "=== Ablation: out-of-core classification heuristic "
               "(limitation 2) ===\n";
  t.print(std::cout);
  std::cout << "Under-prediction (predicted < actual) near the memory "
               "boundary is the signature\nof the simple heuristic "
               "classifying a streamed variable as in core.\n";
  return 0;
}
