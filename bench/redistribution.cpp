// Extension bench (paper §6 future work): choosing a distribution "on the
// fly" requires moving data, and moving data costs time. For each
// application on each Table-1 architecture this binary prices the switch
// from the naive Blk distribution to the model's best pick and reports the
// break-even iteration count — how many remaining iterations justify
// redistribution.
#include <iostream>

#include "core/redistribution.hpp"
#include "exp/experiment.hpp"
#include "search/search.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  exp::ExperimentOptions opts;
  Table t({"app", "arch", "MB moved", "switch cost (s)", "old iter (s)",
           "new iter (s)", "break-even iters", "verdict (paper iters)"});

  for (const char* arch_name : {"DC", "IO", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    for (const auto& w : exp::paper_workloads()) {
      const auto predictor = exp::build_predictor(arch, w, opts);
      const auto ctx = exp::make_context(arch, w, opts);
      const search::SpectrumSpace space(ctx, arch.spectrum);
      const search::Objective objective = [&](const dist::GenBlock& d) {
        return predictor.predict(d, 1).total_s;
      };
      const auto pick = search::gbs(space, objective);
      const auto from = dist::block_dist(ctx);
      const auto plan = core::plan_switch(predictor, w.program,
                                          predictor.params(), from, pick.best);
      const auto cost = core::redistribution_cost(w.program,
                                                  predictor.params(), from,
                                                  pick.best);
      std::string verdict;
      if (plan.break_even_iterations == 0)
        verdict = "never (Blk already best)";
      else if (plan.worthwhile(w.iterations))
        verdict = "switch";
      else
        verdict = "stay on Blk";
      t.add_row({w.name, arch_name,
                 fmt(static_cast<double>(cost.bytes_moved) / (1 << 20), 1),
                 fmt(plan.switch_cost_s, 2), fmt(plan.old_iteration_s, 3),
                 fmt(plan.new_iteration_s, 3),
                 std::to_string(plan.break_even_iterations),
                 verdict + " (" + std::to_string(w.iterations) + ")"});
    }
    t.add_separator();
  }
  std::cout << "=== Redistribution planning (extension; paper §6 future "
               "work) ===\n";
  t.print(std::cout);
  std::cout << "Switching from Blk to the GBS pick pays off when the "
               "remaining iteration count\nexceeds break-even; the verdict "
               "uses each benchmark's paper iteration count.\n";
  return 0;
}
