// Extension bench: the 2-D search-space explosion (paper §5.1).
//
// "The MHETA model extends to two-dimensional data distributions, but such
// distributions are problematic for run-time data distribution systems
// because the search space increases greatly. Hence, we focus in this
// paper on only one-dimensional distributions."
//
// This binary makes the trade-off concrete for 2-D Jacobi on HY1:
//   1. candidate-family size, 1-D vs 2-D, at equal per-dimension resolution;
//   2. the model-evaluation cost of exhausting each family;
//   3. what the extra dimension actually buys (best 2-D vs best 1-D).
#include <chrono>
#include <iostream>

#include "exp/experiment2d.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  exp::ExperimentOptions opts;
  const auto arch = cluster::find_arch("HY1");
  const auto w = exp::jacobi2d_workload({2, 4});
  const auto predictor = exp::build_predictor_2d(arch, w, opts);
  const auto ctx = exp::make_context_2d(arch, w);
  const auto instrumented = exp::instrumented_dist_2d(arch, w);

  std::cout << "=== The 2-D search-space explosion (Jacobi on HY1, 2x4 "
               "grid) ===\n";
  Table t({"per-dim resolution", "1-D candidates", "2-D candidates",
           "2-D exhaustive model time (ms)", "best predicted 2-D (s)"});
  for (int steps : {0, 2, 6, 14, 30}) {
    const auto family = dist::spectrum_2d(ctx, steps);
    const auto t0 = std::chrono::steady_clock::now();
    double best = 1e300;
    dist::Dist2D best_dist = family.front();
    for (const auto& d : family) {
      const double v = predictor.predict2d(d, instrumented, w.iterations).total_s;
      if (v < best) {
        best = v;
        best_dist = d;
      }
    }
    const auto elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    t.add_row({std::to_string(steps + 2),
               std::to_string(steps + 2),  // 1-D family at same resolution
               std::to_string(family.size()), fmt(elapsed, 1), fmt(best, 2)});
  }
  t.print(std::cout);

  // What the second dimension buys.
  double best1d = 1e300, best2d = 1e300;
  for (const auto& d : dist::spectrum_2d(ctx, 14)) {
    const double v = predictor.predict2d(d, instrumented, w.iterations).total_s;
    if (d.col_dist().counts() ==
        dist::block_dist_2d(ctx).col_dist().counts()) {
      best1d = std::min(best1d, v);  // column dimension fixed = 1-D family
    }
    best2d = std::min(best2d, v);
  }
  std::cout << "\nbest with rows only (1-D family): " << fmt(best1d, 2)
            << " s\nbest with rows and columns:       " << fmt(best2d, 2)
            << " s (" << fmt_pct(1.0 - best2d / best1d) << " faster)\n"
            << "\nThe candidate count grows quadratically with resolution "
               "while the gain from\nthe second dimension is modest — the "
               "paper's reason to restrict the runtime\nsearch to one "
               "dimension.\n";
  return 0;
}
