// Ablation A1: the Figure-5 prefetch-instrumentation transform.
//
// The paper forces prefetch issues to behave as blocking reads (and waits
// as no-ops) during the instrumented iteration so the read latency and the
// overlapped computation can both be timed exactly. The naive alternative —
// timing the asynchronous issue and the wait directly — cannot observe the
// true latency whenever the overlap computation exceeds it (Figure 4,
// case 2): the issue returns immediately and the wait sees only the
// *remaining* latency, so the harvested per-variable rates are far too low
// and the model under-predicts out-of-core points.
//
// This binary builds two predictors for the prefetching Jacobi — one
// instrumented with the transform, one naively — and compares their
// accuracy over the distribution spectrum on the I/O-bound architectures.
#include <iostream>

#include "exp/experiment.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  Table t({"arch", "instrumentation", "avg diff", "max diff"});
  for (const char* arch_name : {"IO", "IO2", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    const auto w = exp::jacobi_workload(true);

    exp::ExperimentOptions with_transform;
    with_transform.spectrum_steps = 1;
    auto sweep_with = exp::run_sweep(arch, w, with_transform);

    exp::ExperimentOptions naive = with_transform;
    naive.prefetch_transform = false;
    auto sweep_naive = exp::run_sweep(arch, w, naive);

    t.add_row({arch_name, "Figure-5 transform",
               fmt_pct(sweep_with.avg_diff()), fmt_pct(sweep_with.max_diff())});
    t.add_row({arch_name, "naive async timers",
               fmt_pct(sweep_naive.avg_diff()),
               fmt_pct(sweep_naive.max_diff())});
    t.add_separator();
  }
  std::cout << "=== Ablation: prefetch instrumentation (paper Figure 5) "
               "===\n";
  t.print(std::cout);
  std::cout << "Prefetching Jacobi across the distribution spectrum; the "
               "naive timers miss\nlatency hidden behind overlap compute, so "
               "their predictor under-estimates\nout-of-core costs.\n";
  return 0;
}
