// Table 1: the four emulated architectures described in detail, plus a
// summary of the full validation suite (seventeen architectures, twelve in
// the prefetching subset).
#include <iostream>

#include "cluster/suite.hpp"
#include "util/table.hpp"

using namespace mheta;

namespace {

std::string memory_str(std::int64_t bytes) {
  return fmt(static_cast<double>(bytes) / (1 << 20), 0) + " MiB";
}

void print_config(const cluster::ArchConfig& arch,
                  const std::string& description) {
  std::cout << arch.cluster.name << " — " << description << '\n';
  Table t({"node", "cpu power", "memory", "disk read", "disk write"});
  for (int i = 0; i < arch.cluster.size(); ++i) {
    const auto& n = arch.cluster.node(i);
    t.add_row({std::to_string(i), fmt(n.cpu_power, 2),
               memory_str(n.memory_bytes),
               fmt(1.0 / n.disk_read_s_per_byte / 1e6, 0) + " MB/s",
               fmt(1.0 / n.disk_write_s_per_byte / 1e6, 0) + " MB/s"});
  }
  t.print(std::cout);
  std::cout << "distribution spectrum: " << cluster::to_string(arch.spectrum)
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Table 1: sample configurations of the emulated "
               "architectures ===\n\n";
  print_config(cluster::make_dc(),
               "two nodes with lower and two with higher relative CPU power");
  print_config(cluster::make_io(),
               "half the nodes with high I/O latency and small memories, "
               "equal CPU power");
  print_config(cluster::make_hy1(),
               "four nodes with varying CPU power, four with low I/O latency "
               "and small memories");
  print_config(cluster::make_hy2(),
               "four nodes with varying CPU power, two with high I/O "
               "latency; two with large memories");

  const auto suite = cluster::architecture_suite();
  const auto prefetch = cluster::prefetch_suite();
  std::cout << "=== Validation suite ===\n";
  Table t({"architecture", "spectrum", "in prefetch suite"});
  for (const auto& a : suite)
    t.add_row({a.cluster.name, cluster::to_string(a.spectrum),
               a.in_prefetch_suite ? "yes" : "no"});
  t.print(std::cout);
  std::cout << suite.size() << " architectures total, " << prefetch.size()
            << " in the prefetching subset (paper: seventeen and twelve)\n";
  return 0;
}
