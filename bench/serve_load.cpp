// Load generator for mheta-serve: drives an in-process Server over its real
// Unix-domain socket from concurrent client threads and records latency and
// throughput per phase into BENCH_serve.json.
//
// Two phases over the same mixed request list (predict/bounds/whatif/lint
// across apps and distributions, plus pings):
//   cold  caches start empty — session builds and payload computation
//         dominate; the first client to touch a (input, arch) pair pays
//         calibration, the rest block on the interned build;
//   warm  every cacheable request is a response-cache hit.
// The binary exits nonzero — and CI fails — if any request errors, if a
// response ever differs between clients for the same request line, or if
// the warm phase is not served from the cache (hit count must exceed its
// request count's worth of misses; see the gate below).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/server.hpp"
#include "util/net.hpp"

using namespace mheta;

namespace {

constexpr int kClientThreads = 6;
constexpr int kWarmRepeats = 8;

struct PhaseStats {
  std::string name;
  std::vector<double> latencies_s;  // merged across clients, then sorted
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double wall_s = 0;
};

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// The mixed request list every client plays. One JSON line per request;
// `id` is varied by the sender so identical payloads are still cache-equal
// (the canonical key excludes it).
std::vector<std::string> request_mix() {
  std::vector<std::string> mix;
  const char* apps[] = {"jacobi", "cg", "multigrid"};
  const char* dists[] = {"blk", "bal", "ic", "icbal"};
  for (const char* app : apps) {
    for (const char* dist : dists) {
      mix.push_back(std::string("{\"kind\":\"predict\",\"input\":\"") + app +
                    "\",\"arch\":\"HY1\",\"dist\":\"" + dist + "\"}");
    }
    mix.push_back(std::string("{\"kind\":\"bounds\",\"input\":\"") + app +
                  "\",\"arch\":\"HY1\"}");
    mix.push_back(std::string("{\"kind\":\"lint\",\"input\":\"") + app +
                  "\",\"arch\":\"HY1\"}");
  }
  mix.push_back(
      "{\"kind\":\"whatif\",\"input\":\"jacobi\",\"arch\":\"HY1\","
      "\"perturb\":[{\"param\":\"compute\",\"rank\":0,\"factor\":2.0}]}");
  mix.push_back(
      "{\"kind\":\"whatif\",\"input\":\"jacobi\",\"arch\":\"HY1\","
      "\"perturb\":[{\"param\":\"net_bandwidth\",\"factor\":0.5}]}");
  mix.push_back("{\"kind\":\"ping\",\"echo\":\"load\"}");
  return mix;
}

/// Plays `repeats` passes of the mix over one connection; records per-request
/// latency and cross-checks responses against `expected` (first writer wins).
void run_client(const std::string& socket_path,
                const std::vector<std::string>& mix, int repeats,
                std::vector<std::string>& expected, std::mutex& expected_mu,
                std::vector<double>& latencies, std::uint64_t& errors) {
  const util::FdOwner conn = util::unix_connect(socket_path);
  util::LineReader reader(conn.fd());
  std::string response;
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t i = 0; i < mix.size(); ++i) {
      const auto begin = std::chrono::steady_clock::now();
      if (!util::write_all(conn.fd(), mix[i] + "\n") ||
          reader.next(response) != util::LineReader::Status::kLine) {
        ++errors;
        return;
      }
      latencies.push_back(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - begin)
                              .count());
      if (response.find("\"ok\":true") == std::string::npos) {
        ++errors;
        continue;
      }
      std::lock_guard<std::mutex> lock(expected_mu);
      if (expected[i].empty()) {
        expected[i] = response;
      } else if (expected[i] != response) {
        // Concurrent clients must read byte-identical responses.
        ++errors;
      }
    }
  }
}

PhaseStats run_phase(const std::string& name, const std::string& socket_path,
                     const std::vector<std::string>& mix, int repeats) {
  PhaseStats stats;
  stats.name = name;
  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<std::uint64_t> errors(kClientThreads, 0);
  std::vector<std::string> expected(mix.size());
  std::mutex expected_mu;
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      run_client(socket_path, mix, repeats, expected, expected_mu,
                 latencies[c], errors[c]);
    });
  }
  for (auto& t : clients) t.join();
  stats.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               begin)
                     .count();
  for (int c = 0; c < kClientThreads; ++c) {
    stats.requests += latencies[c].size();
    stats.errors += errors[c];
    stats.latencies_s.insert(stats.latencies_s.end(), latencies[c].begin(),
                             latencies[c].end());
  }
  std::sort(stats.latencies_s.begin(), stats.latencies_s.end());
  return stats;
}

obs::JsonValue number(double v) {
  obs::JsonValue j;
  j.kind = obs::JsonValue::Kind::kNumber;
  j.number = v;
  return j;
}

obs::JsonValue phase_json(const PhaseStats& s) {
  obs::JsonValue j;
  j.kind = obs::JsonValue::Kind::kObject;
  obs::JsonValue name;
  name.kind = obs::JsonValue::Kind::kString;
  name.string = s.name;
  j.object["name"] = name;
  j.object["requests"] = number(static_cast<double>(s.requests));
  j.object["errors"] = number(static_cast<double>(s.errors));
  j.object["wall_s"] = number(s.wall_s);
  j.object["requests_per_s"] =
      number(s.wall_s > 0 ? static_cast<double>(s.requests) / s.wall_s : 0);
  j.object["p50_s"] = number(quantile(s.latencies_s, 0.50));
  j.object["p99_s"] = number(quantile(s.latencies_s, 0.99));
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: serve_load [--out BENCH_serve.json]\n";
      return 2;
    }
  }

  serve::ServerOptions options;
  options.socket_path = "serve_load.sock";
  options.threads = 6;
  serve::Server server(options);
  std::thread daemon([&] { server.run(); });
  // The listener binds inside run(); wait for the socket to accept.
  for (int i = 0; i < 200; ++i) {
    try {
      util::unix_connect(options.socket_path);
      break;
    } catch (...) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const std::vector<std::string> mix = request_mix();
  const auto cold = run_phase("cold", options.socket_path, mix, 1);
  const auto cold_stats = server.cache().stats();
  const auto warm =
      run_phase("warm", options.socket_path, mix, kWarmRepeats);
  const auto warm_stats = server.cache().stats();
  server.shutdown();
  daemon.join();

  const std::uint64_t warm_hits = warm_stats.hits - cold_stats.hits;
  const std::uint64_t warm_misses = warm_stats.misses - cold_stats.misses;
  const double total_requests =
      static_cast<double>(cold.requests + warm.requests);

  obs::JsonValue root;
  root.kind = obs::JsonValue::Kind::kObject;
  root.object["client_threads"] = number(kClientThreads);
  root.object["distinct_requests"] = number(static_cast<double>(mix.size()));
  root.object["total_requests"] = number(total_requests);
  obs::JsonValue phases;
  phases.kind = obs::JsonValue::Kind::kArray;
  phases.array.push_back(phase_json(cold));
  phases.array.push_back(phase_json(warm));
  root.object["phases"] = phases;
  obs::JsonValue cache;
  cache.kind = obs::JsonValue::Kind::kObject;
  cache.object["hits"] = number(static_cast<double>(warm_stats.hits));
  cache.object["misses"] = number(static_cast<double>(warm_stats.misses));
  cache.object["evictions"] =
      number(static_cast<double>(warm_stats.evictions));
  cache.object["warm_hits"] = number(static_cast<double>(warm_hits));
  cache.object["warm_hit_rate"] = number(
      warm_hits + warm_misses > 0
          ? static_cast<double>(warm_hits) /
                static_cast<double>(warm_hits + warm_misses)
          : 0);
  root.object["cache"] = cache;

  std::ofstream out(out_path);
  out << obs::json_serialize(root) << '\n';
  out.close();

  std::cout << "serve_load: " << total_requests << " requests ("
            << cold.requests << " cold / " << warm.requests << " warm), "
            << "cold p50 " << quantile(cold.latencies_s, 0.5) * 1e3
            << " ms, warm p50 " << quantile(warm.latencies_s, 0.5) * 1e3
            << " ms, warm hit rate "
            << (warm_hits + warm_misses > 0
                    ? static_cast<double>(warm_hits) /
                          static_cast<double>(warm_hits + warm_misses)
                    : 0)
            << ", errors " << cold.errors + warm.errors << '\n';

  // Gates: a thousand-request mixed load, zero errors, warm phase served
  // from the cache.
  if (cold.errors + warm.errors != 0) {
    std::cerr << "serve_load: FAILED — requests errored\n";
    return 1;
  }
  if (total_requests < 1000) {
    std::cerr << "serve_load: FAILED — load too small\n";
    return 1;
  }
  if (warm_hits == 0) {
    std::cerr << "serve_load: FAILED — warm phase never hit the cache\n";
    return 1;
  }
  return 0;
}
