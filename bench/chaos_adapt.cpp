// Adaptive-runtime bench (paper §6 future work): replays every shipped
// drift scenario on its documented workload/architecture pairing and
// reports what each redistribution policy achieves — the static-best
// baseline, the adaptive controller (which pays for its reactions), and
// the free-switching oracle bound. The oracle <= adaptive <= static
// invariant must hold on every row; CI's chaos-smoke job runs this binary
// with --out to leave a comparable BENCH_adapt.json artifact per PR.
//
// Usage: chaos_adapt [--out FILE]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/suite.hpp"
#include "exp/experiment.hpp"
#include "fault/adapt.hpp"
#include "fault/scenario_io.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mheta;

namespace {

struct Pairing {
  const char* file;      ///< under examples/scenarios/
  const char* workload;  ///< exp::workload_by_name key
  const char* arch;      ///< Table-1 architecture
};

// The shipped scenarios with the pairings EXPERIMENTS.md documents.
constexpr Pairing kPairings[] = {
    {"step-cpu.chaos", "jacobi", "HY1"},
    {"disk-aging.chaos", "jacobi", "IO"},
    {"net-burst.chaos", "jacobi", "HY1"},
};

fault::Scenario load(const std::string& path) {
  std::ifstream in(path);
  MHETA_CHECK_MSG(in, "cannot open " << path);
  return fault::load_scenario(in);
}

void usage(std::ostream& os) {
  os << "usage: chaos_adapt [--out FILE]\n"
     << "\n"
     << "Replays every shipped drift scenario under the static-best,\n"
     << "adaptive, and oracle policies. With --out FILE, also writes the\n"
     << "comparison as JSON (BENCH_adapt.json format). Exits nonzero when\n"
     << "the oracle <= adaptive <= static invariant breaks.\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::ArgCursor args(argc, argv, "chaos_adapt");
  std::string out_path;
  std::string arg;
  while (args.next(arg)) {
    if (auto code = util::cli::handle_common_flag(arg, args.tool(), usage))
      return *code;
    if (arg == "--out") {
      const auto v = args.value(arg);
      if (!v) return util::cli::kExitUsage;
      out_path = *v;
      continue;
    }
    std::cerr << args.tool() << ": unknown argument '" << arg << "'\n";
    return util::cli::kExitUsage;
  }

  Table t({"scenario", "app", "arch", "static (s)", "adaptive (s)",
           "oracle (s)", "saved (s)", "% of bound", "ordered"});
  std::vector<fault::ChaosRunResult> results;

  for (const Pairing& p : kPairings) {
    const fault::Scenario s =
        load(std::string(MHETA_SCENARIO_DIR "/") + p.file);
    const auto arch = cluster::find_arch(p.arch);
    const auto w = exp::workload_by_name(p.workload);
    MHETA_CHECK_MSG(w.has_value(), "unknown workload " << p.workload);

    const fault::ChaosRunResult r =
        fault::run_chaos(arch, *w, s, fault::AdaptOptions{});
    const double saved = r.static_best.total_s - r.adaptive.total_s;
    const double bound = r.static_best.total_s - r.oracle.total_s;
    t.add_row({r.scenario, r.workload, r.arch, fmt(r.static_best.total_s, 3),
               fmt(r.adaptive.total_s, 3), fmt(r.oracle.total_s, 3),
               fmt(saved, 3), bound > 0 ? fmt(100.0 * saved / bound, 1) : "-",
               r.ordered() ? "yes" : "NO"});
    results.push_back(r);
  }

  std::cout << "=== Adaptive redistribution on the shipped drift scenarios "
               "(extension; paper SS6) ===\n";
  t.print(std::cout);
  std::cout << "'saved' is static - adaptive (reaction costs included); "
               "'% of bound' relates it to\nthe oracle's free-switching "
               "headroom. 'ordered' asserts oracle <= adaptive <= "
               "static.\n";

  bool all_ordered = true;
  bool all_strict = true;
  for (const auto& r : results) {
    all_ordered = all_ordered && r.ordered();
    all_strict = all_strict && r.adaptive.total_s < r.static_best.total_s;
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    MHETA_CHECK_MSG(out, "cannot write " << out_path);
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      out << "    {\"scenario\": " << obs::json_escape(r.scenario)
          << ", \"workload\": " << obs::json_escape(r.workload)
          << ", \"arch\": " << obs::json_escape(r.arch)
          << ", \"static_s\": " << obs::json_number(r.static_best.total_s)
          << ", \"adaptive_s\": " << obs::json_number(r.adaptive.total_s)
          << ", \"oracle_s\": " << obs::json_number(r.oracle.total_s)
          << ", \"adaptive_overhead_s\": "
          << obs::json_number(r.adaptive.overhead_s)
          << ", \"switches\": " << r.adaptive.switches
          << ", \"recalibrations\": " << r.adaptive.recalibrations
          << ", \"ordered\": " << (r.ordered() ? "true" : "false") << "}"
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << out_path << "\n";
  }

  if (!all_ordered) {
    std::cerr << "FAIL: oracle <= adaptive <= static violated\n";
    return util::cli::kExitError;
  }
  if (!all_strict) {
    std::cerr << "FAIL: adaptive not strictly better than static-best\n";
    return util::cli::kExitError;
  }
  return util::cli::kExitOk;
}
