// Figure 11: actual vs predicted execution times on the hybrid
// configurations HY1 and HY2 over the full distribution axis, plus the
// §5.3 detail: on HY1 the best Jacobi distribution lies between I-C/Bal
// and Bal and beats Bal significantly (paper: by 28%).
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  exp::ExperimentOptions opts;
  opts.spectrum_steps = 3;

  for (const char* name : {"HY1", "HY2"}) {
    const auto arch = cluster::find_arch(name);
    std::vector<exp::SweepResult> cg_jacobi, lanczos_rna;
    for (const auto& w : exp::paper_workloads()) {
      auto sweep = exp::run_sweep(arch, w, opts);
      if (w.name == "CG" || w.name == "Jacobi")
        cg_jacobi.push_back(std::move(sweep));
      else
        lanczos_rna.push_back(std::move(sweep));
    }
    exp::print_times_panel(
        std::cout,
        "=== Figure 11: CG and Jacobi — configuration " + std::string(name) +
            " ===",
        cg_jacobi);
    exp::print_times_panel(
        std::cout,
        "=== Figure 11: Lanczos and RNA — configuration " + std::string(name) +
            " ===",
        lanczos_rna);
  }

  // §5.3 detail: fine sweep of the I-C/Bal..Bal segment for Jacobi on HY1.
  std::cout << "=== §5.3 detail: Jacobi on HY1 between I-C/Bal and Bal ===\n";
  exp::ExperimentOptions fine = opts;
  fine.spectrum_steps = 7;
  const auto arch = cluster::find_arch("HY1");
  const auto sweep =
      exp::run_sweep(arch, exp::jacobi_workload(false), fine);
  Table t({"t", "label", "actual (s)", "predicted (s)"});
  double bal_actual = 0, best_segment_actual = 1e300;
  std::string best_label;
  for (const auto& p : sweep.points) {
    if (p.point.t < 0.5 - 1e-9 || p.point.t > 0.75 + 1e-9) continue;
    t.add_row({fmt(p.point.t, 3), p.point.label, fmt(p.actual_s, 2),
               fmt(p.predicted_s, 2)});
    if (p.point.label == "Bal") bal_actual = p.actual_s;
    if (p.actual_s < best_segment_actual) {
      best_segment_actual = p.actual_s;
      best_label = p.point.label.empty() ? "t=" + fmt(p.point.t, 3)
                                         : p.point.label;
    }
  }
  t.print(std::cout);
  std::cout << "best point in segment: " << best_label << ", "
            << fmt_pct(1.0 - best_segment_actual / bal_actual)
            << " faster than Bal (paper reports 28%)\n";
  return 0;
}
