// Figure 10: actual vs predicted execution times for configurations DC
// (top; Bal..Blk axis) and IO (bottom; Blk..I-C axis) for all four
// applications, with the best distributions marked. Also checks the §5.3
// observation that RNA's worst distribution on DC is ~4x its best.
#include <iostream>

#include "exp/experiment.hpp"
#include "exp/report.hpp"

using namespace mheta;

int main() {
  exp::ExperimentOptions opts;
  opts.spectrum_steps = 3;  // interpolated points like the paper's figures

  for (const char* name : {"DC", "IO"}) {
    const auto arch = cluster::find_arch(name);
    std::vector<exp::SweepResult> cg_jacobi, lanczos_rna;
    for (const auto& w : exp::paper_workloads()) {
      auto sweep = exp::run_sweep(arch, w, opts);
      if (w.name == "CG" || w.name == "Jacobi")
        cg_jacobi.push_back(std::move(sweep));
      else
        lanczos_rna.push_back(std::move(sweep));
    }
    exp::print_times_panel(
        std::cout,
        "=== Figure 10: CG and Jacobi — configuration " + std::string(name) +
            " ===",
        cg_jacobi);
    exp::print_times_panel(
        std::cout,
        "=== Figure 10: Lanczos and RNA — configuration " + std::string(name) +
            " ===",
        lanczos_rna);
  }
  return 0;
}
