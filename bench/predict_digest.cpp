// Canonical prediction digest for cross-build bit-identity checks.
//
// Prints one line per (app, distribution) with the exact bit patterns of
// the full Predictor::predict makespan and the lane-batched evaluation of a
// small candidate set. Two builds of the repository are FP-identical iff
// their outputs are byte-identical — CI builds the default and the
// MHETA_NATIVE (-O3 -march=native -ffp-contract=off) configurations, runs
// this tool in both, and diffs. Doubles are printed as hex bit patterns,
// never decimal, so formatting can't round away a mismatch.
#include <bit>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/lanes.hpp"
#include "core/model.hpp"
#include "dist/generators.hpp"
#include "exp/experiment.hpp"
#include "search/objective.hpp"
#include "util/cli.hpp"

namespace {

using namespace mheta;

std::string hex_bits(double v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0')
     << std::bit_cast<std::uint64_t>(v);
  return os.str();
}

// FNV-1a over the bit patterns, so the tail of the output carries one
// summary line that is easy to compare by eye.
struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void add(double v) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

void usage(std::ostream& os) {
  os << "usage: predict_digest [--arch NAME]\n"
     << "\n"
     << "Prints the bit patterns (hex) of full and lane-batched predictions\n"
     << "for every paper workload under four distributions. Outputs of two\n"
     << "builds are byte-identical iff their predictions are bit-identical;\n"
     << "CI diffs the default build against the MHETA_NATIVE one.\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::ArgCursor args(argc, argv, "predict_digest");
  std::string arch_name = "HY1";
  std::string arg;
  while (args.next(arg)) {
    if (auto code = util::cli::handle_common_flag(arg, args.tool(), usage))
      return *code;
    if (arg == "--arch") {
      const auto v = args.value(arg);
      if (!v) return util::cli::kExitUsage;
      arch_name = *v;
      continue;
    }
    std::cerr << args.tool() << ": unknown argument '" << arg << "'\n";
    return util::cli::kExitUsage;
  }

  const auto arch = cluster::find_arch(arch_name);
  exp::ExperimentOptions opts;
  Fnv fnv;
  for (const auto& w : exp::paper_workloads()) {
    const core::Predictor predictor = exp::build_predictor(arch, w, opts);
    const dist::DistContext ctx = exp::make_context(arch, w, opts);
    const struct {
      const char* name;
      dist::GenBlock d;
    } dists[] = {
        {"blk", dist::block_dist(ctx)},
        {"bal", dist::balanced_dist(ctx)},
        {"ic", dist::in_core_dist(ctx)},
        {"icbal", dist::in_core_balanced_dist(ctx)},
    };
    // Lane batch: the four distributions plus interpolations between them,
    // wide enough to exercise a full lane group alongside the scalar path.
    std::vector<dist::GenBlock> batch;
    for (const auto& e : dists) batch.push_back(e.d);
    for (int i = 1; i < 8; ++i)
      batch.push_back(dist::interpolate(dists[0].d, dists[1].d,
                                        static_cast<double>(i) / 8.0));
    core::LaneOptions lopts;
    lopts.min_fill = 1;
    lopts.lane_width = static_cast<int>(batch.size());
    const search::LaneObjective lanes(predictor, w.iterations, arch.cluster,
                                      lopts);
    const std::vector<double> lane_totals = lanes.evaluate(batch);
    for (const auto& e : dists) {
      const core::Prediction p = predictor.predict(e.d, w.iterations);
      std::cout << w.name << ' ' << e.name << " total " << hex_bits(p.total_s);
      fnv.add(p.total_s);
      std::cout << " ends";
      for (const double end : p.node_end_s) {
        std::cout << ' ' << hex_bits(end);
        fnv.add(end);
      }
      std::cout << '\n';
    }
    std::cout << w.name << " lane";
    for (const double t : lane_totals) {
      std::cout << ' ' << hex_bits(t);
      fnv.add(t);
    }
    std::cout << '\n';
  }
  std::cout << "digest " << std::hex << std::setw(16) << std::setfill('0')
            << fnv.h << '\n';
  return util::cli::kExitOk;
}
