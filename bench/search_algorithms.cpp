// §5.3 / companion paper [26]: MHETA as the evaluation function inside four
// distribution-search algorithms. For each application on each Table-1
// architecture, compares what GBS, genetic, simulated annealing, and random
// search find (using *predicted* time) against a fine exhaustive sweep, and
// reports how far each pick is from the true (simulated) optimum.
//
// With `--out FILE` the binary instead measures search-move throughput with
// the full objective vs. the incremental (delta) objective, writes the
// comparison as JSON (see bench/README.md), and exits nonzero if the two
// objectives ever disagree — the delta path must be bit-identical.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/driver.hpp"
#include "exp/experiment.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace mheta;

namespace {

// Batch-evaluation determinism and scaling: every batchable algorithm run
// through a thread pool must return a SearchResult bit-identical to the
// serial run (same best counts, same best_time bits, same evaluations).
void batch_scaling_report() {
  exp::ExperimentOptions opts;
  const auto arch = cluster::find_arch("HY1");
  const auto w = exp::jacobi_workload(false);
  const auto predictor = exp::build_predictor(arch, w, opts);
  const auto ctx = exp::make_context(arch, w, opts);
  const search::SpectrumSpace space(ctx, arch.spectrum);
  search::Objective objective = [&](const dist::GenBlock& d) {
    return predictor.predict(d, w.iterations).total_s;
  };
  // Large rounds so the pool has work to spread.
  search::GbsOptions gbs_opts;
  gbs_opts.fanout = 33;
  search::HillClimbOptions hill_opts;
  hill_opts.neighbors = 64;
  search::TabuOptions tabu_opts;
  tabu_opts.neighbors = 64;
  tabu_opts.steps = 60;
  search::GeneticOptions gen_opts;
  gen_opts.population = 64;
  gen_opts.generations = 20;

  struct Algo {
    const char* name;
    std::function<search::SearchResult(const search::BatchObjective&)> run;
  };
  const Algo algos[] = {
      {"GBS", [&](const search::BatchObjective& o) {
         return search::gbs(space, o, gbs_opts);
       }},
      {"random", [&](const search::BatchObjective& o) {
         return search::random_search(space, o, 512, 1);
       }},
      {"hill-climb", [&](const search::BatchObjective& o) {
         return search::hill_climb(dist::block_dist(ctx), o, hill_opts, 1);
       }},
      {"tabu", [&](const search::BatchObjective& o) {
         return search::tabu_search(dist::block_dist(ctx), o, tabu_opts, 1);
       }},
      {"genetic", [&](const search::BatchObjective& o) {
         return search::genetic(ctx, o, gen_opts, 1);
       }},
  };

  Table t({"algorithm", "evals", "serial (ms)", "2 threads (ms)",
           "4 threads (ms)", "bit-identical"});
  util::ThreadPool pool2(2), pool4(4);
  for (const auto& algo : algos) {
    auto timed = [&](const search::BatchObjective& o, search::SearchResult& r) {
      const auto start = std::chrono::steady_clock::now();
      r = algo.run(o);
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    search::SearchResult serial, par2, par4;
    const double ms1 = timed(search::BatchObjective(objective), serial);
    const double ms2 = timed(search::BatchObjective(objective, pool2), par2);
    const double ms4 = timed(search::BatchObjective(objective, pool4), par4);
    auto same = [&](const search::SearchResult& r) {
      return r.best.counts() == serial.best.counts() &&
             r.best_time == serial.best_time &&
             r.evaluations == serial.evaluations;
    };
    t.add_row({algo.name, std::to_string(serial.evaluations), fmt(ms1, 2),
               fmt(ms2, 2), fmt(ms4, 2),
               same(par2) && same(par4) ? "yes" : "NO"});
  }
  std::cout << "\n=== Batch evaluation: serial vs thread pool (Jacobi/HY1) "
               "===\n";
  t.print(std::cout);
  std::cout << "Parallel runs must be bit-identical to serial (same best "
               "distribution,\nbest_time bits, and evaluation count).\n";
}

// Delta-evaluation throughput: each batchable algorithm, run serially once
// with the full objective and once with the incremental objective, must
// return bit-identical SearchResults while the incremental run serves moves
// at a multiple of the full rate. Three paper workloads span the model-width
// spectrum (Jacobi: 1 stage slot per rank; RNA: a 16-tile pipeline;
// Multigrid: 6 sections, 10 slots per rank). Moves/s is measured over time
// spent *inside* the objective (a timing shim both runs pay equally), so the
// comparison isolates evaluation cost from neighbor generation; wall times
// are reported alongside. A separate cross-checked pass per app measures
// worst-case drift (zero by construction). Writes BENCH_search.json; the
// process exits nonzero on any mismatch or drift above 1e-9 so CI can gate
// on the same contract the tests assert.
int delta_throughput_report(const std::string& out_path) {
  exp::ExperimentOptions opts;
  const auto arch = cluster::find_arch("HY1");

  // Large rounds so timings are stable and row reuse dominates, as it does
  // inside a real search.
  search::GbsOptions gbs_opts;
  gbs_opts.fanout = 33;
  search::HillClimbOptions hill_opts;
  hill_opts.neighbors = 64;
  search::TabuOptions tabu_opts;
  tabu_opts.neighbors = 64;
  tabu_opts.steps = 120;
  search::GeneticOptions gen_opts;
  gen_opts.population = 64;
  gen_opts.generations = 40;

  auto seconds_of = [](const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // Accumulates time spent inside `inner` into `*acc_s`.
  auto shimmed = [](const search::Objective& inner, double* acc_s) {
    return search::Objective([&inner, acc_s](const dist::GenBlock& d) {
      const auto start = std::chrono::steady_clock::now();
      const double v = inner(d);
      *acc_s += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      return v;
    });
  };

  bool all_identical = true;
  double min_speedup = 1e300;
  double max_speedup = 0;
  double min_table_reduction = 1e300;
  double worst_drift = 0;
  std::ostringstream apps_json;
  for (const auto& w : {exp::jacobi_workload(false), exp::rna_workload(),
                        exp::multigrid_workload()}) {
    const auto predictor = exp::build_predictor(arch, w, opts);
    const auto ctx = exp::make_context(arch, w, opts);
    const search::SpectrumSpace space(ctx, arch.spectrum);
    const search::Objective full =
        search::make_objective(predictor, w.iterations, arch.cluster);

    struct Algo {
      const char* name;
      std::function<search::SearchResult(const search::Objective&)> run;
    };
    const Algo algos[] = {
        {"gbs", [&](const search::Objective& o) {
           return search::gbs(space, o, gbs_opts);
         }},
        {"random", [&](const search::Objective& o) {
           return search::random_search(space, o, 1024, 1);
         }},
        {"hill", [&](const search::Objective& o) {
           return search::hill_climb(dist::block_dist(ctx), o, hill_opts, 1);
         }},
        {"tabu", [&](const search::Objective& o) {
           return search::tabu_search(dist::block_dist(ctx), o, tabu_opts, 1);
         }},
        {"genetic", [&](const search::Objective& o) {
           return search::genetic(ctx, o, gen_opts, 1);
         }},
    };

    std::ostringstream rows;
    Table t({"algorithm", "evals", "full obj (ms)", "delta obj (ms)",
             "full moves/s", "delta moves/s", "speedup", "table work x",
             "identical"});
    for (const auto& algo : algos) {
      // Fresh evaluator per algorithm so row-cache warmup is charged to
      // each measurement, as a search driver would pay it.
      const search::DeltaObjective delta(predictor, w.iterations,
                                         arch.cluster);
      search::SearchResult full_r, delta_r;
      double full_obj_s = 0, delta_obj_s = 0;
      const search::Objective full_t = shimmed(full, &full_obj_s);
      const search::Objective delta_inner{delta};
      const search::Objective delta_t = shimmed(delta_inner, &delta_obj_s);
      const double full_wall_s = seconds_of([&] { full_r = algo.run(full_t); });
      const double delta_wall_s =
          seconds_of([&] { delta_r = algo.run(delta_t); });
      const bool identical = full_r.best.counts() == delta_r.best.counts() &&
                             full_r.best_time == delta_r.best_time &&
                             full_r.evaluations == delta_r.evaluations;
      all_identical = all_identical && identical;
      const double evals = static_cast<double>(full_r.evaluations);
      const double speedup = delta_obj_s > 0 ? full_obj_s / delta_obj_s : 0;
      min_speedup = std::min(min_speedup, speedup);
      max_speedup = std::max(max_speedup, speedup);
      // Stage-table work per move: the full objective rebuilds every rank's
      // stage tables each evaluation; the delta objective builds a rank's
      // row only on a row-cache miss (a novel (rank, rows) pair).
      const core::DeltaStats ds = delta.stats();
      const std::uint64_t full_builds =
          static_cast<std::uint64_t>(full_r.evaluations) *
          static_cast<std::uint64_t>(
              predictor.params().node_count());
      const double table_reduction =
          ds.rows_computed > 0
              ? static_cast<double>(full_builds) /
                    static_cast<double>(ds.rows_computed)
              : static_cast<double>(full_builds);
      min_table_reduction = std::min(min_table_reduction, table_reduction);
      if (!rows.str().empty()) rows << ",\n";
      rows << "      {\"name\": \"" << algo.name << "\", \"evaluations\": "
           << full_r.evaluations << ", \"full_obj_s\": " << full_obj_s
           << ", \"delta_obj_s\": " << delta_obj_s
           << ", \"full_wall_s\": " << full_wall_s
           << ", \"delta_wall_s\": " << delta_wall_s
           << ", \"full_moves_per_s\": "
           << (full_obj_s > 0 ? evals / full_obj_s : 0)
           << ", \"delta_moves_per_s\": "
           << (delta_obj_s > 0 ? evals / delta_obj_s : 0)
           << ", \"speedup\": " << speedup
           << ", \"full_rank_builds\": " << full_builds
           << ", \"delta_rank_builds\": " << ds.rows_computed
           << ", \"table_work_reduction\": " << table_reduction
           << ", \"identical\": " << (identical ? "true" : "false") << "}";
      t.add_row({algo.name, std::to_string(full_r.evaluations),
                 fmt(full_obj_s * 1e3, 2), fmt(delta_obj_s * 1e3, 2),
                 fmt(full_obj_s > 0 ? evals / full_obj_s : 0, 0),
                 fmt(delta_obj_s > 0 ? evals / delta_obj_s : 0, 0),
                 fmt(speedup, 1), fmt(table_reduction, 1),
                 identical ? "yes" : "NO"});
    }

    // Drift oracle: a shorter cross-checked pass where every delta value is
    // compared against a full predict inside the evaluator itself.
    core::DeltaOptions check_opts;
    check_opts.crosscheck_every = 1;
    const search::DeltaObjective checked(predictor, w.iterations,
                                         arch.cluster, check_opts);
    search::TabuOptions check_tabu;
    check_tabu.steps = 20;
    check_tabu.neighbors = 16;
    (void)search::tabu_search(dist::block_dist(ctx),
                              search::Objective(checked), check_tabu, 1);
    const core::DeltaStats check = checked.stats();
    worst_drift = std::max(worst_drift, check.max_drift_s);

    std::cout << "=== Search-move throughput: full vs delta objective ("
              << w.name << "/HY1, " << w.iterations
              << " iterations, serial) ===\n";
    t.print(std::cout);
    std::cout << "cross-checked evaluations " << check.evaluations
              << ", max drift " << check.max_drift_s << " s\n\n";

    if (!apps_json.str().empty()) apps_json << ",\n";
    apps_json << "    {\"app\": \"" << w.name << "\", \"iterations\": "
              << w.iterations << ", \"algorithms\": [\n"
              << rows.str() << "\n    ],\n"
              << "    \"crosscheck\": {\"evaluations\": " << check.evaluations
              << ", \"crosschecks\": " << check.crosschecks
              << ", \"full_fallbacks\": " << check.full_fallbacks
              << ", \"max_drift_s\": " << check.max_drift_s << "}}";
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"benchmark\": \"search_delta_throughput\",\n"
     << "  \"arch\": \"HY1\",\n  \"apps\": [\n"
     << apps_json.str() << "\n  ],\n"
     << "  \"min_speedup\": " << min_speedup << ",\n"
     << "  \"max_speedup\": " << max_speedup << ",\n"
     << "  \"min_table_work_reduction\": " << min_table_reduction << ",\n"
     << "  \"all_identical\": " << (all_identical ? "true" : "false") << ",\n"
     << "  \"max_drift_s\": " << worst_drift << "\n}\n";

  if (!all_identical) {
    std::cerr << "FAIL: delta objective changed a search result\n";
    return 1;
  }
  if (worst_drift > 1e-9) {
    std::cerr << "FAIL: delta drift " << worst_drift << " s > 1e-9\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      return delta_throughput_report(argv[i + 1]);
  }

  exp::ExperimentOptions opts;

  Table t({"app", "arch", "algorithm", "evals", "predicted (s)",
           "actual of pick (s)", "vs fine-sweep best"});

  for (const char* arch_name : {"DC", "IO", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    for (const auto& w : {exp::jacobi_workload(false), exp::lanczos_workload()}) {
      const auto predictor = exp::build_predictor(arch, w, opts);
      const auto ctx = exp::make_context(arch, w, opts);
      search::Objective objective = [&](const dist::GenBlock& d) {
        return predictor.predict(d, w.iterations).total_s;
      };
      auto actual_of = [&](const dist::GenBlock& d) {
        apps::RunOptions run;
        run.iterations = w.iterations;
        run.runtime = opts.runtime;
        return apps::run_program(arch.cluster, opts.effects, w.program, d, run)
            .seconds;
      };

      // Reference: fine sweep of the spectrum (65 points), actual times.
      const search::SpectrumSpace space(ctx, arch.spectrum);
      double sweep_best = 1e300;
      constexpr int kSweepPoints = 65;
      for (int i = 0; i < kSweepPoints; ++i) {
        const double time = actual_of(
            space.at(static_cast<double>(i) / (kSweepPoints - 1)));
        sweep_best = std::min(sweep_best, time);
      }

      auto report = [&](const char* algo, const search::SearchResult& r) {
        const double act = actual_of(r.best);
        t.add_row({w.name, arch_name, algo, std::to_string(r.evaluations),
                   fmt(r.best_time, 2), fmt(act, 2),
                   "+" + fmt_pct(act / sweep_best - 1.0)});
      };
      report("GBS", search::gbs(space, objective));
      report("genetic", search::genetic(ctx, objective, {}, 1));
      search::AnnealOptions anneal;
      report("annealing", search::simulated_annealing(dist::block_dist(ctx),
                                                      objective, anneal, 1));
      report("random", search::random_search(space, objective, 40, 1));
      // Extension algorithms beyond the companion paper's four.
      report("hill-climb (ext)",
             search::hill_climb(dist::block_dist(ctx), objective, {}, 1));
      report("tabu (ext)",
             search::tabu_search(dist::block_dist(ctx), objective, {}, 1));
      t.add_separator();
    }
  }
  std::cout << "=== Distribution search with MHETA as evaluation function "
               "===\n";
  t.print(std::cout);
  std::cout << "\"vs fine-sweep best\" compares the actual run time of each "
               "algorithm's pick\nagainst the best actual time over a "
               "65-point exhaustive sweep of the spectrum.\n";
  batch_scaling_report();
  return 0;
}
