// §5.3 / companion paper [26]: MHETA as the evaluation function inside four
// distribution-search algorithms. For each application on each Table-1
// architecture, compares what GBS, genetic, simulated annealing, and random
// search find (using *predicted* time) against a fine exhaustive sweep, and
// reports how far each pick is from the true (simulated) optimum.
//
// With `--out FILE` the binary instead measures search-move throughput three
// ways — the full objective, the incremental (delta) objective, and the
// lane-batched objective (K candidates per clock sweep) — writes the
// comparison as JSON (see bench/README.md), and exits nonzero if any
// accelerated objective ever disagrees with the full one: both the delta and
// the lane path must be bit-identical, lane for lane, with zero crosscheck
// drift and zero fallback latches. A certified branch-and-bound pass then
// runs gbs/hill/tabu/genetic through search::BoundedObjective: zero
// lo <= value <= hi oracle violations, zero latches, every pruned candidate
// re-evaluating at or above its certified lower bound (and never below the
// run's best), and pruning firing on at least two of the three apps.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "exp/experiment.hpp"
#include "search/objective.hpp"
#include "search/search.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace mheta;

namespace {

// Batch-evaluation determinism and scaling: every batchable algorithm run
// through a thread pool must return a SearchResult bit-identical to the
// serial run (same best counts, same best_time bits, same evaluations).
void batch_scaling_report() {
  exp::ExperimentOptions opts;
  const auto arch = cluster::find_arch("HY1");
  const auto w = exp::jacobi_workload(false);
  const auto predictor = exp::build_predictor(arch, w, opts);
  const auto ctx = exp::make_context(arch, w, opts);
  const search::SpectrumSpace space(ctx, arch.spectrum);
  search::Objective objective = [&](const dist::GenBlock& d) {
    return predictor.predict(d, w.iterations).total_s;
  };
  // Large rounds so the pool has work to spread.
  search::GbsOptions gbs_opts;
  gbs_opts.fanout = 33;
  search::HillClimbOptions hill_opts;
  hill_opts.neighbors = 64;
  search::TabuOptions tabu_opts;
  tabu_opts.neighbors = 64;
  tabu_opts.steps = 60;
  search::GeneticOptions gen_opts;
  gen_opts.population = 64;
  gen_opts.generations = 20;

  struct Algo {
    const char* name;
    std::function<search::SearchResult(const search::BatchObjective&)> run;
  };
  const Algo algos[] = {
      {"GBS", [&](const search::BatchObjective& o) {
         return search::gbs(space, o, gbs_opts);
       }},
      {"random", [&](const search::BatchObjective& o) {
         return search::random_search(space, o, 512, 1);
       }},
      {"hill-climb", [&](const search::BatchObjective& o) {
         return search::hill_climb(dist::block_dist(ctx), o, hill_opts, 1);
       }},
      {"tabu", [&](const search::BatchObjective& o) {
         return search::tabu_search(dist::block_dist(ctx), o, tabu_opts, 1);
       }},
      {"genetic", [&](const search::BatchObjective& o) {
         return search::genetic(ctx, o, gen_opts, 1);
       }},
  };

  Table t({"algorithm", "evals", "serial (ms)", "2 threads (ms)",
           "4 threads (ms)", "bit-identical"});
  util::ThreadPool pool2(2), pool4(4);
  for (const auto& algo : algos) {
    auto timed = [&](const search::BatchObjective& o, search::SearchResult& r) {
      const auto start = std::chrono::steady_clock::now();
      r = algo.run(o);
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    search::SearchResult serial, par2, par4;
    const double ms1 = timed(search::BatchObjective(objective), serial);
    const double ms2 = timed(search::BatchObjective(objective, pool2), par2);
    const double ms4 = timed(search::BatchObjective(objective, pool4), par4);
    auto same = [&](const search::SearchResult& r) {
      return r.best.counts() == serial.best.counts() &&
             r.best_time == serial.best_time &&
             r.evaluations == serial.evaluations;
    };
    t.add_row({algo.name, std::to_string(serial.evaluations), fmt(ms1, 2),
               fmt(ms2, 2), fmt(ms4, 2),
               same(par2) && same(par4) ? "yes" : "NO"});
  }
  std::cout << "\n=== Batch evaluation: serial vs thread pool (Jacobi/HY1) "
               "===\n";
  t.print(std::cout);
  std::cout << "Parallel runs must be bit-identical to serial (same best "
               "distribution,\nbest_time bits, and evaluation count).\n";
}

// Objective throughput, three ways: each batchable algorithm runs serially
// with the full objective, the incremental (delta) objective, and the
// lane-batched objective; all three must return bit-identical SearchResults
// while the accelerated runs serve moves at a multiple of the full rate.
// Three paper workloads span the model-width spectrum (Jacobi: 1 stage slot
// per rank; RNA: a 16-tile pipeline; Multigrid: 6 sections, 10 slots per
// rank). Moves/s is measured over time spent *inside* the objective (a
// timing shim all runs pay equally), so the comparison isolates evaluation
// cost from neighbor generation; wall times are reported alongside. The
// delta run records its table-work vs clock-loop split (the measured Amdahl
// floor the lane path attacks) and the lane run its assemble vs sweep
// split. Separate cross-checked passes per app compare every delta value
// and every lane against a full predict (zero drift by construction).
// Writes BENCH_search.json; the process exits nonzero on any mismatch,
// drift above 1e-9, or a lane fallback latch, so CI can gate on the same
// contract the tests assert.
int delta_throughput_report(const std::string& out_path) {
  exp::ExperimentOptions opts;
  const auto arch = cluster::find_arch("HY1");

  // Large rounds so timings are stable and row reuse dominates, as it does
  // inside a real search.
  search::GbsOptions gbs_opts;
  gbs_opts.fanout = 33;
  search::HillClimbOptions hill_opts;
  hill_opts.neighbors = 64;
  search::TabuOptions tabu_opts;
  tabu_opts.neighbors = 64;
  tabu_opts.steps = 120;
  search::GeneticOptions gen_opts;
  gen_opts.population = 64;
  // Long enough that the population converges and the per-(rank, rows) row
  // working set saturates (~3.5k rows on these apps) — the regime a real
  // search spends most of its time in, where table work is amortized and
  // the clock loop dominates. Stays under both row caches' 4096-entry
  // capacity, so neither accelerated path thrashes.
  gen_opts.generations = 100;

  auto seconds_of = [](const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // Accumulates time spent inside `inner` into `*acc_s`.
  auto shimmed = [](const search::Objective& inner, double* acc_s) {
    return search::Objective([&inner, acc_s](const dist::GenBlock& d) {
      const auto start = std::chrono::steady_clock::now();
      const double v = inner(d);
      *acc_s += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      return v;
    });
  };

  bool all_identical = true;
  bool lane_all_identical = true;
  double min_speedup = 1e300;
  double max_speedup = 0;
  double min_lane_speedup = 1e300;
  double max_lane_speedup = 0;
  double min_table_reduction = 1e300;
  double worst_drift = 0;
  double worst_lane_drift = 0;
  std::uint64_t lane_latches = 0;
  int apps_with_population_3x = 0;
  std::uint64_t bounds_violations_total = 0;
  std::uint64_t bounds_latches_total = 0;
  int apps_with_bounds_pruning = 0;
  bool bounds_audit_ok = true;
  std::ostringstream apps_json;
  for (const auto& w : {exp::jacobi_workload(false), exp::rna_workload(),
                        exp::multigrid_workload()}) {
    const auto predictor = exp::build_predictor(arch, w, opts);
    const auto ctx = exp::make_context(arch, w, opts);
    const search::SpectrumSpace space(ctx, arch.spectrum);
    const search::Objective full =
        search::make_objective(predictor, w.iterations, arch.cluster);

    struct Algo {
      const char* name;
      bool population;  // driven by whole-population batches
      std::function<search::SearchResult(const search::BatchObjective&)> run;
    };
    const Algo algos[] = {
        {"gbs", false, [&](const search::BatchObjective& o) {
           return search::gbs(space, o, gbs_opts);
         }},
        {"random", false, [&](const search::BatchObjective& o) {
           return search::random_search(space, o, 1024, 1);
         }},
        {"hill", false, [&](const search::BatchObjective& o) {
           return search::hill_climb(dist::block_dist(ctx), o, hill_opts, 1);
         }},
        {"tabu", false, [&](const search::BatchObjective& o) {
           return search::tabu_search(dist::block_dist(ctx), o, tabu_opts, 1);
         }},
        {"genetic", true, [&](const search::BatchObjective& o) {
           return search::genetic(ctx, o, gen_opts, 1);
         }},
    };

    double population_lane_vs_delta = 0;
    std::ostringstream rows;
    Table t({"algorithm", "evals", "full (ms)", "delta (ms)", "lane (ms)",
             "delta x", "lane x", "lane/delta", "fill", "identical"});
    for (const auto& algo : algos) {
      // Each path is measured over kReps repetitions with fresh evaluators,
      // so row-cache warmup is charged to each measurement as a search
      // driver would pay it, and the best (minimum-time) rep is reported —
      // the standard way to estimate the true cost under scheduler noise.
      // The predictor-level plan cache stays warm across reps for every
      // path alike. Component timing on for both accelerated paths: the
      // delta split is the measured Amdahl floor, the lane split shows
      // where the lane path spends what remains.
      constexpr int kReps = 3;
      search::SearchResult full_r, delta_r, lane_r;
      double full_obj_s = 1e300, delta_obj_s = 1e300, lane_obj_s = 1e300;
      double full_wall_s = 0, delta_wall_s = 0, lane_wall_s = 0;
      bool identical = true, lane_identical = true;
      core::DeltaStats ds;
      core::LaneStats ls;
      for (int rep = 0; rep < kReps; ++rep) {
        core::DeltaOptions delta_opts;
        delta_opts.time_components = true;
        const search::DeltaObjective delta(predictor, w.iterations,
                                           arch.cluster, delta_opts);
        core::LaneOptions lane_opts;
        lane_opts.time_components = true;
        const search::LaneObjective lanes(predictor, w.iterations,
                                          arch.cluster, lane_opts);
        double full_s = 0, delta_s = 0, lane_s = 0;
        const search::Objective full_t = shimmed(full, &full_s);
        const search::Objective delta_inner{delta};
        const search::Objective delta_t = shimmed(delta_inner, &delta_s);
        const search::Objective lane_inner{lanes};
        // The lane run batches whole candidate sets; the shim wraps both
        // the scalar entry (single candidates) and the batch entry so
        // lane_s covers every evaluated move, like the other two shims.
        const search::BatchObjective lane_t(
            shimmed(lane_inner, &lane_s),
            [&lanes, &lane_s](const std::vector<dist::GenBlock>& cs) {
              const auto start = std::chrono::steady_clock::now();
              auto values = lanes.evaluate(cs);
              lane_s += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
              return values;
            });
        search::SearchResult fr, dr, lr;
        const double fw = seconds_of(
            [&] { fr = algo.run(search::BatchObjective(full_t)); });
        const double dw = seconds_of(
            [&] { dr = algo.run(search::BatchObjective(delta_t)); });
        const double lw = seconds_of([&] { lr = algo.run(lane_t); });
        auto same = [&](const search::SearchResult& r) {
          return r.best.counts() == fr.best.counts() &&
                 r.best_time == fr.best_time && r.evaluations == fr.evaluations;
        };
        // Identity must hold on every rep, not just the reported one.
        identical = identical && same(dr);
        lane_identical = lane_identical && same(lr);
        full_r = fr;
        if (full_s < full_obj_s) {
          full_obj_s = full_s;
          full_wall_s = fw;
        }
        if (delta_s < delta_obj_s) {
          delta_obj_s = delta_s;
          delta_wall_s = dw;
          delta_r = dr;
          ds = delta.stats();
        }
        if (lane_s < lane_obj_s) {
          lane_obj_s = lane_s;
          lane_wall_s = lw;
          lane_r = lr;
          ls = lanes.stats();
        }
        // Fallback latches are a correctness signal: count them across all
        // reps, not only the fastest one.
        lane_latches += lanes.stats().fallback_latches;
      }
      all_identical = all_identical && identical;
      lane_all_identical = lane_all_identical && lane_identical;
      const double evals = static_cast<double>(full_r.evaluations);
      const double speedup = delta_obj_s > 0 ? full_obj_s / delta_obj_s : 0;
      const double lane_speedup = lane_obj_s > 0 ? full_obj_s / lane_obj_s : 0;
      const double lane_vs_delta =
          lane_obj_s > 0 ? delta_obj_s / lane_obj_s : 0;
      min_speedup = std::min(min_speedup, speedup);
      max_speedup = std::max(max_speedup, speedup);
      min_lane_speedup = std::min(min_lane_speedup, lane_speedup);
      max_lane_speedup = std::max(max_lane_speedup, lane_speedup);
      if (algo.population) population_lane_vs_delta = lane_vs_delta;
      // Stage-table work per move: the full objective rebuilds every rank's
      // stage tables each evaluation; the delta objective builds a rank's
      // row only on a row-cache miss (a novel (rank, rows) pair).
      const std::uint64_t full_builds =
          static_cast<std::uint64_t>(full_r.evaluations) *
          static_cast<std::uint64_t>(
              predictor.params().node_count());
      const double table_reduction =
          ds.rows_computed > 0
              ? static_cast<double>(full_builds) /
                    static_cast<double>(ds.rows_computed)
              : static_cast<double>(full_builds);
      min_table_reduction = std::min(min_table_reduction, table_reduction);
      const double delta_table_s = static_cast<double>(ds.table_ns) * 1e-9;
      const double delta_loop_s = static_cast<double>(ds.loop_ns) * 1e-9;
      const double component_s = delta_table_s + delta_loop_s;
      if (!rows.str().empty()) rows << ",\n";
      rows << "      {\"name\": \"" << algo.name << "\", \"evaluations\": "
           << full_r.evaluations << ", \"full_obj_s\": " << full_obj_s
           << ", \"delta_obj_s\": " << delta_obj_s
           << ", \"lane_obj_s\": " << lane_obj_s
           << ", \"full_wall_s\": " << full_wall_s
           << ", \"delta_wall_s\": " << delta_wall_s
           << ", \"lane_wall_s\": " << lane_wall_s
           << ", \"full_moves_per_s\": "
           << (full_obj_s > 0 ? evals / full_obj_s : 0)
           << ", \"delta_moves_per_s\": "
           << (delta_obj_s > 0 ? evals / delta_obj_s : 0)
           << ", \"lane_moves_per_s\": "
           << (lane_obj_s > 0 ? evals / lane_obj_s : 0)
           << ", \"speedup\": " << speedup
           << ", \"lane_speedup\": " << lane_speedup
           << ", \"lane_vs_delta\": " << lane_vs_delta
           << ", \"full_rank_builds\": " << full_builds
           << ", \"delta_rank_builds\": " << ds.rows_computed
           << ", \"table_work_reduction\": " << table_reduction
           << ", \"delta_table_s\": " << delta_table_s
           << ", \"delta_loop_s\": " << delta_loop_s
           << ", \"clock_loop_fraction\": "
           << (component_s > 0 ? delta_loop_s / component_s : 0)
           << ", \"lane_assemble_s\": "
           << static_cast<double>(ls.assemble_ns) * 1e-9
           << ", \"lane_sweep_s\": " << static_cast<double>(ls.sweep_ns) * 1e-9
           << ", \"lane_batched_sweeps\": " << ls.batched_sweeps
           << ", \"lane_evaluations\": " << ls.lane_evaluations
           << ", \"lane_scalar_evaluations\": " << ls.scalar_evaluations
           << ", \"lane_fill_rate\": " << ls.fill_rate()
           << ", \"lane_fallback_latches\": " << ls.fallback_latches
           << ", \"identical\": " << (identical ? "true" : "false")
           << ", \"lane_identical\": " << (lane_identical ? "true" : "false")
           << "}";
      t.add_row({algo.name, std::to_string(full_r.evaluations),
                 fmt(full_obj_s * 1e3, 2), fmt(delta_obj_s * 1e3, 2),
                 fmt(lane_obj_s * 1e3, 2), fmt(speedup, 1),
                 fmt(lane_speedup, 1), fmt(lane_vs_delta, 2),
                 fmt(ls.fill_rate(), 2),
                 identical && lane_identical ? "yes" : "NO"});
    }

    // Drift oracles: shorter cross-checked passes where every delta value
    // (and every lane of every sweep) is compared against a full predict
    // inside the evaluator itself.
    core::DeltaOptions check_opts;
    check_opts.crosscheck_every = 1;
    const search::DeltaObjective checked(predictor, w.iterations,
                                         arch.cluster, check_opts);
    search::TabuOptions check_tabu;
    check_tabu.steps = 20;
    check_tabu.neighbors = 16;
    (void)search::tabu_search(dist::block_dist(ctx),
                              search::Objective(checked), check_tabu, 1);
    const core::DeltaStats check = checked.stats();
    worst_drift = std::max(worst_drift, check.max_drift_s);

    core::LaneOptions lane_check_opts;
    lane_check_opts.crosscheck_every = 1;
    const search::LaneObjective lane_checked(predictor, w.iterations,
                                             arch.cluster, lane_check_opts);
    search::GeneticOptions check_gen;
    check_gen.population = 16;
    check_gen.generations = 6;
    (void)search::genetic(ctx, search::BatchObjective(lane_checked),
                          check_gen, 1);
    const core::LaneStats lane_check = lane_checked.stats();
    worst_lane_drift = std::max(worst_lane_drift, lane_check.max_drift_s);
    lane_latches += lane_check.fallback_latches;

    // Certified branch-and-bound pass: each bounded-compatible algorithm
    // runs through a BoundedObjective that screens every candidate with
    // the interval-bounds analyzer before scoring survivors lane-batched.
    // Every evaluated candidate pays the lo <= value <= hi oracle (1e-9
    // tolerance), and every pruned candidate is re-evaluated through the
    // full model afterwards: its value must respect the certified lower
    // bound and must not beat the run's best-found time — pruning never
    // discards the winner.
    bool app_pruned = false;
    std::ostringstream bounded_rows;
    Table bt({"algorithm", "evals", "pruned", "prune rate", "width_rel",
              "violations", "audit"});
    for (const auto& algo : algos) {
      if (std::string(algo.name) == "random") continue;
      const search::LaneObjective blanes(predictor, w.iterations,
                                         arch.cluster);
      search::BoundedOptions bopts;
      bopts.max_pruned_samples = 1u << 16;
      const search::BoundedObjective bounded(
          predictor, w.iterations, search::Objective(blanes),
          [blanes](const std::vector<dist::GenBlock>& cs) {
            return blanes.evaluate(cs);
          },
          bopts);
      const search::BatchObjective bounded_batch(
          search::Objective(bounded),
          [bounded](const std::vector<dist::GenBlock>& cs) {
            return bounded(cs);
          });
      const search::SearchResult br = algo.run(bounded_batch);
      const search::BoundedStats bs = bounded.stats();
      bounds_violations_total += bs.violations;
      if (bs.latched) ++bounds_latches_total;
      if (bs.pruned > 0) app_pruned = true;
      bool audit = true;
      for (const auto& sample : bounded.pruned_samples()) {
        const double v = full(sample.candidate);
        if (v < sample.lower_bound - 1e-9 || v < br.best_time - 1e-9)
          audit = false;
      }
      bounds_audit_ok = bounds_audit_ok && audit;
      if (!bounded_rows.str().empty()) bounded_rows << ",\n";
      bounded_rows << "      {\"name\": \"" << algo.name
                   << "\", \"evaluations\": " << br.evaluations
                   << ", \"best_time_s\": " << br.best_time
                   << ", \"bounds_evaluated\": " << bs.evaluated
                   << ", \"bounds_pruned\": " << bs.pruned
                   << ", \"prune_rate\": " << bs.prune_rate()
                   << ", \"bounds_width_rel\": " << bs.width_rel_mean
                   << ", \"crosschecks\": " << bs.crosschecks
                   << ", \"violations\": " << bs.violations
                   << ", \"latched\": " << (bs.latched ? "true" : "false")
                   << ", \"audit_ok\": " << (audit ? "true" : "false") << "}";
      bt.add_row({algo.name, std::to_string(br.evaluations),
                  std::to_string(bs.pruned), fmt(bs.prune_rate(), 3),
                  fmt(bs.width_rel_mean, 3), std::to_string(bs.violations),
                  audit ? "ok" : "FAIL"});
    }
    if (app_pruned) ++apps_with_bounds_pruning;

    std::cout << "=== Search-move throughput: full vs delta vs lane ("
              << w.name << "/HY1, " << w.iterations
              << " iterations, serial) ===\n";
    t.print(std::cout);
    std::cout << "cross-checked: delta " << check.evaluations
              << " evaluations (max drift " << check.max_drift_s
              << " s), lane " << lane_check.crosschecks
              << " lane comparisons (max drift " << lane_check.max_drift_s
              << " s, " << lane_check.fallback_latches << " latches)\n";
    std::cout << "--- certified branch-and-bound (interval bounds, oracle "
                 "1e-9, pruned candidates re-evaluated) ---\n";
    bt.print(std::cout);
    std::cout << "\n";

    if (population_lane_vs_delta >= 3.0) ++apps_with_population_3x;
    if (!apps_json.str().empty()) apps_json << ",\n";
    apps_json << "    {\"app\": \"" << w.name << "\", \"iterations\": "
              << w.iterations << ", \"algorithms\": [\n"
              << rows.str() << "\n    ],\n"
              << "    \"population_lane_vs_delta\": "
              << population_lane_vs_delta << ",\n"
              << "    \"crosscheck\": {\"evaluations\": " << check.evaluations
              << ", \"crosschecks\": " << check.crosschecks
              << ", \"full_fallbacks\": " << check.full_fallbacks
              << ", \"max_drift_s\": " << check.max_drift_s << "},\n"
              << "    \"lane_crosscheck\": {\"lane_evaluations\": "
              << lane_check.lane_evaluations
              << ", \"crosschecks\": " << lane_check.crosschecks
              << ", \"fallback_latches\": " << lane_check.fallback_latches
              << ", \"max_drift_s\": " << lane_check.max_drift_s << "},\n"
              << "    \"bounded\": [\n" << bounded_rows.str() << "\n    ],\n"
              << "    \"bounds_pruned_any\": "
              << (app_pruned ? "true" : "false") << "}";
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return util::cli::kExitUsage;
  }
  os << "{\n  \"benchmark\": \"search_delta_throughput\",\n"
     << "  \"arch\": \"HY1\",\n  \"apps\": [\n"
     << apps_json.str() << "\n  ],\n"
     << "  \"min_speedup\": " << min_speedup << ",\n"
     << "  \"max_speedup\": " << max_speedup << ",\n"
     << "  \"min_lane_speedup\": " << min_lane_speedup << ",\n"
     << "  \"max_lane_speedup\": " << max_lane_speedup << ",\n"
     << "  \"apps_with_population_lane_3x\": " << apps_with_population_3x
     << ",\n"
     << "  \"min_table_work_reduction\": " << min_table_reduction << ",\n"
     << "  \"all_identical\": " << (all_identical ? "true" : "false") << ",\n"
     << "  \"lane_all_identical\": "
     << (lane_all_identical ? "true" : "false") << ",\n"
     << "  \"max_drift_s\": " << worst_drift << ",\n"
     << "  \"lane_max_drift_s\": " << worst_lane_drift << ",\n"
     << "  \"lane_fallback_latches\": " << lane_latches << ",\n"
     << "  \"bounds_violations\": " << bounds_violations_total << ",\n"
     << "  \"bounds_latches\": " << bounds_latches_total << ",\n"
     << "  \"apps_with_bounds_pruning\": " << apps_with_bounds_pruning
     << ",\n"
     << "  \"bounds_audit_ok\": " << (bounds_audit_ok ? "true" : "false")
     << "\n}\n";

  if (!all_identical) {
    std::cerr << "FAIL: delta objective changed a search result\n";
    return util::cli::kExitError;
  }
  if (!lane_all_identical) {
    std::cerr << "FAIL: lane objective changed a search result\n";
    return util::cli::kExitError;
  }
  if (worst_drift > 1e-9) {
    std::cerr << "FAIL: delta drift " << worst_drift << " s > 1e-9\n";
    return util::cli::kExitError;
  }
  if (worst_lane_drift > 1e-9) {
    std::cerr << "FAIL: lane drift " << worst_lane_drift << " s > 1e-9\n";
    return util::cli::kExitError;
  }
  if (lane_latches > 0) {
    std::cerr << "FAIL: " << lane_latches << " lane fallback latches\n";
    return util::cli::kExitError;
  }
  if (bounds_violations_total > 0 || bounds_latches_total > 0) {
    std::cerr << "FAIL: " << bounds_violations_total
              << " bound-oracle violations, " << bounds_latches_total
              << " bounded-objective latches\n";
    return util::cli::kExitError;
  }
  if (!bounds_audit_ok) {
    std::cerr << "FAIL: a pruned candidate re-evaluated below its certified "
                 "lower bound or below the run's best\n";
    return util::cli::kExitError;
  }
  if (apps_with_bounds_pruning < 2) {
    std::cerr << "FAIL: certified pruning fired on only "
              << apps_with_bounds_pruning << " of 3 apps (need >= 2)\n";
    return util::cli::kExitError;
  }
  return util::cli::kExitOk;
}

void usage(std::ostream& os) {
  os << "usage: search_algorithms [--out FILE]\n"
     << "\n"
     << "Without flags, prints the search-quality comparison (each\n"
     << "algorithm's pick vs a fine exhaustive sweep) and the thread-pool\n"
     << "determinism report. With --out FILE, instead measures objective\n"
     << "throughput (full vs delta vs lane-batched) and writes the JSON\n"
     << "comparison to FILE, exiting nonzero on any bit-identity or drift\n"
     << "violation.\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::cli::ArgCursor args(argc, argv, "search_algorithms");
  std::string out_path;
  std::string arg;
  while (args.next(arg)) {
    if (const auto code = util::cli::handle_common_flag(arg, args.tool(),
                                                        usage)) {
      return *code;
    }
    if (arg == "--out") {
      const auto v = args.value(arg);
      if (!v) return util::cli::kExitUsage;
      out_path = *v;
    } else {
      std::cerr << args.tool() << ": unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return util::cli::kExitUsage;
    }
  }
  if (!out_path.empty()) return delta_throughput_report(out_path);

  exp::ExperimentOptions opts;

  Table t({"app", "arch", "algorithm", "evals", "predicted (s)",
           "actual of pick (s)", "vs fine-sweep best"});

  for (const char* arch_name : {"DC", "IO", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    for (const auto& w : {exp::jacobi_workload(false), exp::lanczos_workload()}) {
      const auto predictor = exp::build_predictor(arch, w, opts);
      const auto ctx = exp::make_context(arch, w, opts);
      search::Objective objective = [&](const dist::GenBlock& d) {
        return predictor.predict(d, w.iterations).total_s;
      };
      auto actual_of = [&](const dist::GenBlock& d) {
        apps::RunOptions run;
        run.iterations = w.iterations;
        run.runtime = opts.runtime;
        return apps::run_program(arch.cluster, opts.effects, w.program, d, run)
            .seconds;
      };

      // Reference: fine sweep of the spectrum (65 points), actual times.
      const search::SpectrumSpace space(ctx, arch.spectrum);
      double sweep_best = 1e300;
      constexpr int kSweepPoints = 65;
      for (int i = 0; i < kSweepPoints; ++i) {
        const double time = actual_of(
            space.at(static_cast<double>(i) / (kSweepPoints - 1)));
        sweep_best = std::min(sweep_best, time);
      }

      auto report = [&](const char* algo, const search::SearchResult& r) {
        const double act = actual_of(r.best);
        t.add_row({w.name, arch_name, algo, std::to_string(r.evaluations),
                   fmt(r.best_time, 2), fmt(act, 2),
                   "+" + fmt_pct(act / sweep_best - 1.0)});
      };
      report("GBS", search::gbs(space, objective));
      report("genetic", search::genetic(ctx, objective, {}, 1));
      // Annealing's accept/reject chain is one neighbor move per step —
      // exactly the delta objective's O(changed nodes) shape. Values are
      // bit-identical to the full model, so the trajectory is unchanged
      // (the delta_objective tests pin this).
      search::AnnealOptions anneal;
      const search::DeltaObjective anneal_objective(predictor, w.iterations,
                                                    arch.cluster);
      report("annealing",
             search::simulated_annealing(dist::block_dist(ctx),
                                         search::Objective(anneal_objective),
                                         anneal, 1));
      report("random", search::random_search(space, objective, 40, 1));
      // Extension algorithms beyond the companion paper's four.
      report("hill-climb (ext)",
             search::hill_climb(dist::block_dist(ctx), objective, {}, 1));
      report("tabu (ext)",
             search::tabu_search(dist::block_dist(ctx), objective, {}, 1));
      t.add_separator();
    }
  }
  std::cout << "=== Distribution search with MHETA as evaluation function "
               "===\n";
  t.print(std::cout);
  std::cout << "\"vs fine-sweep best\" compares the actual run time of each "
               "algorithm's pick\nagainst the best actual time over a "
               "65-point exhaustive sweep of the spectrum.\n";
  batch_scaling_report();
  return 0;
}
