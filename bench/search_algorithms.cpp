// §5.3 / companion paper [26]: MHETA as the evaluation function inside four
// distribution-search algorithms. For each application on each Table-1
// architecture, compares what GBS, genetic, simulated annealing, and random
// search find (using *predicted* time) against a fine exhaustive sweep, and
// reports how far each pick is from the true (simulated) optimum.
#include <iostream>

#include "apps/driver.hpp"
#include "exp/experiment.hpp"
#include "search/search.hpp"
#include "util/table.hpp"

using namespace mheta;

int main() {
  exp::ExperimentOptions opts;

  Table t({"app", "arch", "algorithm", "evals", "predicted (s)",
           "actual of pick (s)", "vs fine-sweep best"});

  for (const char* arch_name : {"DC", "IO", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    for (const auto& w : {exp::jacobi_workload(false), exp::lanczos_workload()}) {
      const auto predictor = exp::build_predictor(arch, w, opts);
      const auto ctx = exp::make_context(arch, w, opts);
      search::Objective objective = [&](const dist::GenBlock& d) {
        return predictor.predict(d, w.iterations).total_s;
      };
      auto actual_of = [&](const dist::GenBlock& d) {
        apps::RunOptions run;
        run.iterations = w.iterations;
        run.runtime = opts.runtime;
        return apps::run_program(arch.cluster, opts.effects, w.program, d, run)
            .seconds;
      };

      // Reference: fine sweep of the spectrum (65 points), actual times.
      const search::SpectrumSpace space(ctx, arch.spectrum);
      double sweep_best = 1e300;
      constexpr int kSweepPoints = 65;
      for (int i = 0; i < kSweepPoints; ++i) {
        const double time = actual_of(
            space.at(static_cast<double>(i) / (kSweepPoints - 1)));
        sweep_best = std::min(sweep_best, time);
      }

      auto report = [&](const char* algo, const search::SearchResult& r) {
        const double act = actual_of(r.best);
        t.add_row({w.name, arch_name, algo, std::to_string(r.evaluations),
                   fmt(r.best_time, 2), fmt(act, 2),
                   "+" + fmt_pct(act / sweep_best - 1.0)});
      };
      report("GBS", search::gbs(space, objective));
      report("genetic", search::genetic(ctx, objective, {}, 1));
      search::AnnealOptions anneal;
      report("annealing", search::simulated_annealing(dist::block_dist(ctx),
                                                      objective, anneal, 1));
      report("random", search::random_search(space, objective, 40, 1));
      // Extension algorithms beyond the companion paper's four.
      report("hill-climb (ext)",
             search::hill_climb(dist::block_dist(ctx), objective, {}, 1));
      report("tabu (ext)",
             search::tabu_search(dist::block_dist(ctx), objective, {}, 1));
      t.add_separator();
    }
  }
  std::cout << "=== Distribution search with MHETA as evaluation function "
               "===\n";
  t.print(std::cout);
  std::cout << "\"vs fine-sweep best\" compares the actual run time of each "
               "algorithm's pick\nagainst the best actual time over a "
               "65-point exhaustive sweep of the spectrum.\n";
  return 0;
}
