// §5.3 / companion paper [26]: MHETA as the evaluation function inside four
// distribution-search algorithms. For each application on each Table-1
// architecture, compares what GBS, genetic, simulated annealing, and random
// search find (using *predicted* time) against a fine exhaustive sweep, and
// reports how far each pick is from the true (simulated) optimum.
#include <chrono>
#include <iostream>

#include "apps/driver.hpp"
#include "exp/experiment.hpp"
#include "search/search.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace mheta;

namespace {

// Batch-evaluation determinism and scaling: every batchable algorithm run
// through a thread pool must return a SearchResult bit-identical to the
// serial run (same best counts, same best_time bits, same evaluations).
void batch_scaling_report() {
  exp::ExperimentOptions opts;
  const auto arch = cluster::find_arch("HY1");
  const auto w = exp::jacobi_workload(false);
  const auto predictor = exp::build_predictor(arch, w, opts);
  const auto ctx = exp::make_context(arch, w, opts);
  const search::SpectrumSpace space(ctx, arch.spectrum);
  search::Objective objective = [&](const dist::GenBlock& d) {
    return predictor.predict(d, w.iterations).total_s;
  };
  // Large rounds so the pool has work to spread.
  search::GbsOptions gbs_opts;
  gbs_opts.fanout = 33;
  search::HillClimbOptions hill_opts;
  hill_opts.neighbors = 64;
  search::TabuOptions tabu_opts;
  tabu_opts.neighbors = 64;
  tabu_opts.steps = 60;
  search::GeneticOptions gen_opts;
  gen_opts.population = 64;
  gen_opts.generations = 20;

  struct Algo {
    const char* name;
    std::function<search::SearchResult(const search::BatchObjective&)> run;
  };
  const Algo algos[] = {
      {"GBS", [&](const search::BatchObjective& o) {
         return search::gbs(space, o, gbs_opts);
       }},
      {"random", [&](const search::BatchObjective& o) {
         return search::random_search(space, o, 512, 1);
       }},
      {"hill-climb", [&](const search::BatchObjective& o) {
         return search::hill_climb(dist::block_dist(ctx), o, hill_opts, 1);
       }},
      {"tabu", [&](const search::BatchObjective& o) {
         return search::tabu_search(dist::block_dist(ctx), o, tabu_opts, 1);
       }},
      {"genetic", [&](const search::BatchObjective& o) {
         return search::genetic(ctx, o, gen_opts, 1);
       }},
  };

  Table t({"algorithm", "evals", "serial (ms)", "2 threads (ms)",
           "4 threads (ms)", "bit-identical"});
  util::ThreadPool pool2(2), pool4(4);
  for (const auto& algo : algos) {
    auto timed = [&](const search::BatchObjective& o, search::SearchResult& r) {
      const auto start = std::chrono::steady_clock::now();
      r = algo.run(o);
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    search::SearchResult serial, par2, par4;
    const double ms1 = timed(search::BatchObjective(objective), serial);
    const double ms2 = timed(search::BatchObjective(objective, pool2), par2);
    const double ms4 = timed(search::BatchObjective(objective, pool4), par4);
    auto same = [&](const search::SearchResult& r) {
      return r.best.counts() == serial.best.counts() &&
             r.best_time == serial.best_time &&
             r.evaluations == serial.evaluations;
    };
    t.add_row({algo.name, std::to_string(serial.evaluations), fmt(ms1, 2),
               fmt(ms2, 2), fmt(ms4, 2),
               same(par2) && same(par4) ? "yes" : "NO"});
  }
  std::cout << "\n=== Batch evaluation: serial vs thread pool (Jacobi/HY1) "
               "===\n";
  t.print(std::cout);
  std::cout << "Parallel runs must be bit-identical to serial (same best "
               "distribution,\nbest_time bits, and evaluation count).\n";
}

}  // namespace

int main() {
  exp::ExperimentOptions opts;

  Table t({"app", "arch", "algorithm", "evals", "predicted (s)",
           "actual of pick (s)", "vs fine-sweep best"});

  for (const char* arch_name : {"DC", "IO", "HY1", "HY2"}) {
    const auto arch = cluster::find_arch(arch_name);
    for (const auto& w : {exp::jacobi_workload(false), exp::lanczos_workload()}) {
      const auto predictor = exp::build_predictor(arch, w, opts);
      const auto ctx = exp::make_context(arch, w, opts);
      search::Objective objective = [&](const dist::GenBlock& d) {
        return predictor.predict(d, w.iterations).total_s;
      };
      auto actual_of = [&](const dist::GenBlock& d) {
        apps::RunOptions run;
        run.iterations = w.iterations;
        run.runtime = opts.runtime;
        return apps::run_program(arch.cluster, opts.effects, w.program, d, run)
            .seconds;
      };

      // Reference: fine sweep of the spectrum (65 points), actual times.
      const search::SpectrumSpace space(ctx, arch.spectrum);
      double sweep_best = 1e300;
      constexpr int kSweepPoints = 65;
      for (int i = 0; i < kSweepPoints; ++i) {
        const double time = actual_of(
            space.at(static_cast<double>(i) / (kSweepPoints - 1)));
        sweep_best = std::min(sweep_best, time);
      }

      auto report = [&](const char* algo, const search::SearchResult& r) {
        const double act = actual_of(r.best);
        t.add_row({w.name, arch_name, algo, std::to_string(r.evaluations),
                   fmt(r.best_time, 2), fmt(act, 2),
                   "+" + fmt_pct(act / sweep_best - 1.0)});
      };
      report("GBS", search::gbs(space, objective));
      report("genetic", search::genetic(ctx, objective, {}, 1));
      search::AnnealOptions anneal;
      report("annealing", search::simulated_annealing(dist::block_dist(ctx),
                                                      objective, anneal, 1));
      report("random", search::random_search(space, objective, 40, 1));
      // Extension algorithms beyond the companion paper's four.
      report("hill-climb (ext)",
             search::hill_climb(dist::block_dist(ctx), objective, {}, 1));
      report("tabu (ext)",
             search::tabu_search(dist::block_dist(ctx), objective, {}, 1));
      t.add_separator();
    }
  }
  std::cout << "=== Distribution search with MHETA as evaluation function "
               "===\n";
  t.print(std::cout);
  std::cout << "\"vs fine-sweep best\" compares the actual run time of each "
               "algorithm's pick\nagainst the best actual time over a "
               "65-point exhaustive sweep of the spectrum.\n";
  batch_scaling_report();
  return 0;
}
