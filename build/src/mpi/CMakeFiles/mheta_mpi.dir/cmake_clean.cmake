file(REMOVE_RECURSE
  "CMakeFiles/mheta_mpi.dir/world.cpp.o"
  "CMakeFiles/mheta_mpi.dir/world.cpp.o.d"
  "libmheta_mpi.a"
  "libmheta_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
