file(REMOVE_RECURSE
  "libmheta_mpi.a"
)
