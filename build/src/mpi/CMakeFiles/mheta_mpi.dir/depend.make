# Empty dependencies file for mheta_mpi.
# This may be replaced when dependencies are built.
