
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/search.cpp" "src/search/CMakeFiles/mheta_search.dir/search.cpp.o" "gcc" "src/search/CMakeFiles/mheta_search.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/mheta_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mheta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mheta_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
