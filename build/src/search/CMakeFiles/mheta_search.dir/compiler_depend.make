# Empty compiler generated dependencies file for mheta_search.
# This may be replaced when dependencies are built.
