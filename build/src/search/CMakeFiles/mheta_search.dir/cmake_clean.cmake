file(REMOVE_RECURSE
  "CMakeFiles/mheta_search.dir/search.cpp.o"
  "CMakeFiles/mheta_search.dir/search.cpp.o.d"
  "libmheta_search.a"
  "libmheta_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
