file(REMOVE_RECURSE
  "libmheta_search.a"
)
