# CMake generated Testfile for 
# Source directory: /root/repo/src/ooc
# Build directory: /root/repo/build/src/ooc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
