file(REMOVE_RECURSE
  "libmheta_ooc.a"
)
