file(REMOVE_RECURSE
  "CMakeFiles/mheta_ooc.dir/planner.cpp.o"
  "CMakeFiles/mheta_ooc.dir/planner.cpp.o.d"
  "CMakeFiles/mheta_ooc.dir/runtime.cpp.o"
  "CMakeFiles/mheta_ooc.dir/runtime.cpp.o.d"
  "CMakeFiles/mheta_ooc.dir/stage.cpp.o"
  "CMakeFiles/mheta_ooc.dir/stage.cpp.o.d"
  "libmheta_ooc.a"
  "libmheta_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
