# Empty dependencies file for mheta_ooc.
# This may be replaced when dependencies are built.
