file(REMOVE_RECURSE
  "CMakeFiles/mheta_sim.dir/engine.cpp.o"
  "CMakeFiles/mheta_sim.dir/engine.cpp.o.d"
  "libmheta_sim.a"
  "libmheta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
