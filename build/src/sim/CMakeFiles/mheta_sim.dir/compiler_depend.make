# Empty compiler generated dependencies file for mheta_sim.
# This may be replaced when dependencies are built.
