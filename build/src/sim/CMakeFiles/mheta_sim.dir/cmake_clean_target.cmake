file(REMOVE_RECURSE
  "libmheta_sim.a"
)
