
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instrument/calibration.cpp" "src/instrument/CMakeFiles/mheta_instrument.dir/calibration.cpp.o" "gcc" "src/instrument/CMakeFiles/mheta_instrument.dir/calibration.cpp.o.d"
  "/root/repo/src/instrument/gantt.cpp" "src/instrument/CMakeFiles/mheta_instrument.dir/gantt.cpp.o" "gcc" "src/instrument/CMakeFiles/mheta_instrument.dir/gantt.cpp.o.d"
  "/root/repo/src/instrument/params.cpp" "src/instrument/CMakeFiles/mheta_instrument.dir/params.cpp.o" "gcc" "src/instrument/CMakeFiles/mheta_instrument.dir/params.cpp.o.d"
  "/root/repo/src/instrument/recorder.cpp" "src/instrument/CMakeFiles/mheta_instrument.dir/recorder.cpp.o" "gcc" "src/instrument/CMakeFiles/mheta_instrument.dir/recorder.cpp.o.d"
  "/root/repo/src/instrument/trace.cpp" "src/instrument/CMakeFiles/mheta_instrument.dir/trace.cpp.o" "gcc" "src/instrument/CMakeFiles/mheta_instrument.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/mheta_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mheta_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mheta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mheta_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
