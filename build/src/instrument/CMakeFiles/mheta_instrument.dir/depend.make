# Empty dependencies file for mheta_instrument.
# This may be replaced when dependencies are built.
