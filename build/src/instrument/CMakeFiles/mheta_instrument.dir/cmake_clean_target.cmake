file(REMOVE_RECURSE
  "libmheta_instrument.a"
)
