file(REMOVE_RECURSE
  "CMakeFiles/mheta_instrument.dir/calibration.cpp.o"
  "CMakeFiles/mheta_instrument.dir/calibration.cpp.o.d"
  "CMakeFiles/mheta_instrument.dir/gantt.cpp.o"
  "CMakeFiles/mheta_instrument.dir/gantt.cpp.o.d"
  "CMakeFiles/mheta_instrument.dir/params.cpp.o"
  "CMakeFiles/mheta_instrument.dir/params.cpp.o.d"
  "CMakeFiles/mheta_instrument.dir/recorder.cpp.o"
  "CMakeFiles/mheta_instrument.dir/recorder.cpp.o.d"
  "CMakeFiles/mheta_instrument.dir/trace.cpp.o"
  "CMakeFiles/mheta_instrument.dir/trace.cpp.o.d"
  "libmheta_instrument.a"
  "libmheta_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
