# Empty compiler generated dependencies file for mheta_exp.
# This may be replaced when dependencies are built.
