file(REMOVE_RECURSE
  "CMakeFiles/mheta_exp.dir/csv.cpp.o"
  "CMakeFiles/mheta_exp.dir/csv.cpp.o.d"
  "CMakeFiles/mheta_exp.dir/experiment.cpp.o"
  "CMakeFiles/mheta_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/mheta_exp.dir/experiment2d.cpp.o"
  "CMakeFiles/mheta_exp.dir/experiment2d.cpp.o.d"
  "CMakeFiles/mheta_exp.dir/report.cpp.o"
  "CMakeFiles/mheta_exp.dir/report.cpp.o.d"
  "libmheta_exp.a"
  "libmheta_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
