file(REMOVE_RECURSE
  "libmheta_exp.a"
)
