file(REMOVE_RECURSE
  "CMakeFiles/mheta_cluster.dir/disk.cpp.o"
  "CMakeFiles/mheta_cluster.dir/disk.cpp.o.d"
  "CMakeFiles/mheta_cluster.dir/node.cpp.o"
  "CMakeFiles/mheta_cluster.dir/node.cpp.o.d"
  "CMakeFiles/mheta_cluster.dir/suite.cpp.o"
  "CMakeFiles/mheta_cluster.dir/suite.cpp.o.d"
  "libmheta_cluster.a"
  "libmheta_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
