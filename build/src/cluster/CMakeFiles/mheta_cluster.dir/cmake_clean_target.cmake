file(REMOVE_RECURSE
  "libmheta_cluster.a"
)
