
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/disk.cpp" "src/cluster/CMakeFiles/mheta_cluster.dir/disk.cpp.o" "gcc" "src/cluster/CMakeFiles/mheta_cluster.dir/disk.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/mheta_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/mheta_cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/suite.cpp" "src/cluster/CMakeFiles/mheta_cluster.dir/suite.cpp.o" "gcc" "src/cluster/CMakeFiles/mheta_cluster.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mheta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
