# Empty dependencies file for mheta_cluster.
# This may be replaced when dependencies are built.
