file(REMOVE_RECURSE
  "libmheta_core.a"
)
