file(REMOVE_RECURSE
  "CMakeFiles/mheta_core.dir/model.cpp.o"
  "CMakeFiles/mheta_core.dir/model.cpp.o.d"
  "CMakeFiles/mheta_core.dir/redistribution.cpp.o"
  "CMakeFiles/mheta_core.dir/redistribution.cpp.o.d"
  "CMakeFiles/mheta_core.dir/structure_io.cpp.o"
  "CMakeFiles/mheta_core.dir/structure_io.cpp.o.d"
  "libmheta_core.a"
  "libmheta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
