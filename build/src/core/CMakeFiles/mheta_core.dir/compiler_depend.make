# Empty compiler generated dependencies file for mheta_core.
# This may be replaced when dependencies are built.
