file(REMOVE_RECURSE
  "CMakeFiles/mheta_util.dir/rng.cpp.o"
  "CMakeFiles/mheta_util.dir/rng.cpp.o.d"
  "CMakeFiles/mheta_util.dir/table.cpp.o"
  "CMakeFiles/mheta_util.dir/table.cpp.o.d"
  "libmheta_util.a"
  "libmheta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
