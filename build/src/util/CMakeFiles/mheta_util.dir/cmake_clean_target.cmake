file(REMOVE_RECURSE
  "libmheta_util.a"
)
