# Empty dependencies file for mheta_util.
# This may be replaced when dependencies are built.
