
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/mheta_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/driver.cpp" "src/apps/CMakeFiles/mheta_apps.dir/driver.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/driver.cpp.o.d"
  "/root/repo/src/apps/driver2d.cpp" "src/apps/CMakeFiles/mheta_apps.dir/driver2d.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/driver2d.cpp.o.d"
  "/root/repo/src/apps/isort.cpp" "src/apps/CMakeFiles/mheta_apps.dir/isort.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/isort.cpp.o.d"
  "/root/repo/src/apps/jacobi.cpp" "src/apps/CMakeFiles/mheta_apps.dir/jacobi.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/jacobi.cpp.o.d"
  "/root/repo/src/apps/lanczos.cpp" "src/apps/CMakeFiles/mheta_apps.dir/lanczos.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/lanczos.cpp.o.d"
  "/root/repo/src/apps/multigrid.cpp" "src/apps/CMakeFiles/mheta_apps.dir/multigrid.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/multigrid.cpp.o.d"
  "/root/repo/src/apps/rna.cpp" "src/apps/CMakeFiles/mheta_apps.dir/rna.cpp.o" "gcc" "src/apps/CMakeFiles/mheta_apps.dir/rna.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mheta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ooc/CMakeFiles/mheta_ooc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mheta_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mheta_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mheta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/mheta_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mheta_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
