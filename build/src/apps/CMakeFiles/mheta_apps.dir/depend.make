# Empty dependencies file for mheta_apps.
# This may be replaced when dependencies are built.
