file(REMOVE_RECURSE
  "libmheta_apps.a"
)
