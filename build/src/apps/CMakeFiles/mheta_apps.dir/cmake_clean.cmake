file(REMOVE_RECURSE
  "CMakeFiles/mheta_apps.dir/cg.cpp.o"
  "CMakeFiles/mheta_apps.dir/cg.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/driver.cpp.o"
  "CMakeFiles/mheta_apps.dir/driver.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/driver2d.cpp.o"
  "CMakeFiles/mheta_apps.dir/driver2d.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/isort.cpp.o"
  "CMakeFiles/mheta_apps.dir/isort.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/jacobi.cpp.o"
  "CMakeFiles/mheta_apps.dir/jacobi.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/lanczos.cpp.o"
  "CMakeFiles/mheta_apps.dir/lanczos.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/multigrid.cpp.o"
  "CMakeFiles/mheta_apps.dir/multigrid.cpp.o.d"
  "CMakeFiles/mheta_apps.dir/rna.cpp.o"
  "CMakeFiles/mheta_apps.dir/rna.cpp.o.d"
  "libmheta_apps.a"
  "libmheta_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
