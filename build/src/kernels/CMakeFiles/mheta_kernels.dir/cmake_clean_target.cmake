file(REMOVE_RECURSE
  "libmheta_kernels.a"
)
