
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cg.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/cg.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/cg.cpp.o.d"
  "/root/repo/src/kernels/jacobi.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/jacobi.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/jacobi.cpp.o.d"
  "/root/repo/src/kernels/lanczos.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/lanczos.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/lanczos.cpp.o.d"
  "/root/repo/src/kernels/multigrid.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/multigrid.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/multigrid.cpp.o.d"
  "/root/repo/src/kernels/rna.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/rna.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/rna.cpp.o.d"
  "/root/repo/src/kernels/sort.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/sort.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/sort.cpp.o.d"
  "/root/repo/src/kernels/sparse.cpp" "src/kernels/CMakeFiles/mheta_kernels.dir/sparse.cpp.o" "gcc" "src/kernels/CMakeFiles/mheta_kernels.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
