file(REMOVE_RECURSE
  "CMakeFiles/mheta_kernels.dir/cg.cpp.o"
  "CMakeFiles/mheta_kernels.dir/cg.cpp.o.d"
  "CMakeFiles/mheta_kernels.dir/jacobi.cpp.o"
  "CMakeFiles/mheta_kernels.dir/jacobi.cpp.o.d"
  "CMakeFiles/mheta_kernels.dir/lanczos.cpp.o"
  "CMakeFiles/mheta_kernels.dir/lanczos.cpp.o.d"
  "CMakeFiles/mheta_kernels.dir/multigrid.cpp.o"
  "CMakeFiles/mheta_kernels.dir/multigrid.cpp.o.d"
  "CMakeFiles/mheta_kernels.dir/rna.cpp.o"
  "CMakeFiles/mheta_kernels.dir/rna.cpp.o.d"
  "CMakeFiles/mheta_kernels.dir/sort.cpp.o"
  "CMakeFiles/mheta_kernels.dir/sort.cpp.o.d"
  "CMakeFiles/mheta_kernels.dir/sparse.cpp.o"
  "CMakeFiles/mheta_kernels.dir/sparse.cpp.o.d"
  "libmheta_kernels.a"
  "libmheta_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
