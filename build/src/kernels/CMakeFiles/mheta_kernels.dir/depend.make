# Empty dependencies file for mheta_kernels.
# This may be replaced when dependencies are built.
