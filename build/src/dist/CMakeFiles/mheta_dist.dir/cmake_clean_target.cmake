file(REMOVE_RECURSE
  "libmheta_dist.a"
)
