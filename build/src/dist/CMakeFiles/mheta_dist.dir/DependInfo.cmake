
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/dist2d.cpp" "src/dist/CMakeFiles/mheta_dist.dir/dist2d.cpp.o" "gcc" "src/dist/CMakeFiles/mheta_dist.dir/dist2d.cpp.o.d"
  "/root/repo/src/dist/genblock.cpp" "src/dist/CMakeFiles/mheta_dist.dir/genblock.cpp.o" "gcc" "src/dist/CMakeFiles/mheta_dist.dir/genblock.cpp.o.d"
  "/root/repo/src/dist/generators.cpp" "src/dist/CMakeFiles/mheta_dist.dir/generators.cpp.o" "gcc" "src/dist/CMakeFiles/mheta_dist.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mheta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mheta_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
