# Empty dependencies file for mheta_dist.
# This may be replaced when dependencies are built.
