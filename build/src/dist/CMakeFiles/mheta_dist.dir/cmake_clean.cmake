file(REMOVE_RECURSE
  "CMakeFiles/mheta_dist.dir/dist2d.cpp.o"
  "CMakeFiles/mheta_dist.dir/dist2d.cpp.o.d"
  "CMakeFiles/mheta_dist.dir/genblock.cpp.o"
  "CMakeFiles/mheta_dist.dir/genblock.cpp.o.d"
  "CMakeFiles/mheta_dist.dir/generators.cpp.o"
  "CMakeFiles/mheta_dist.dir/generators.cpp.o.d"
  "libmheta_dist.a"
  "libmheta_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
