# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/ooc_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/core_io_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
