# Empty dependencies file for mheta_cli.
# This may be replaced when dependencies are built.
