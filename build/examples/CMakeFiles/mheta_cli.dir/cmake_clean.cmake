file(REMOVE_RECURSE
  "CMakeFiles/mheta_cli.dir/mheta_cli.cpp.o"
  "CMakeFiles/mheta_cli.dir/mheta_cli.cpp.o.d"
  "mheta_cli"
  "mheta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mheta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
