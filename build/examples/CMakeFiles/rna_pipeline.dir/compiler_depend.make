# Empty compiler generated dependencies file for rna_pipeline.
# This may be replaced when dependencies are built.
