file(REMOVE_RECURSE
  "CMakeFiles/rna_pipeline.dir/rna_pipeline.cpp.o"
  "CMakeFiles/rna_pipeline.dir/rna_pipeline.cpp.o.d"
  "rna_pipeline"
  "rna_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
