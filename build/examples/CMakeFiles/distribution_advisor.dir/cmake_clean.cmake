file(REMOVE_RECURSE
  "CMakeFiles/distribution_advisor.dir/distribution_advisor.cpp.o"
  "CMakeFiles/distribution_advisor.dir/distribution_advisor.cpp.o.d"
  "distribution_advisor"
  "distribution_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
