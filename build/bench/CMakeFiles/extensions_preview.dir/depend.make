# Empty dependencies file for extensions_preview.
# This may be replaced when dependencies are built.
