file(REMOVE_RECURSE
  "CMakeFiles/extensions_preview.dir/extensions_preview.cpp.o"
  "CMakeFiles/extensions_preview.dir/extensions_preview.cpp.o.d"
  "extensions_preview"
  "extensions_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
