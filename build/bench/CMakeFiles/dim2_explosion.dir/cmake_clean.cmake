file(REMOVE_RECURSE
  "CMakeFiles/dim2_explosion.dir/dim2_explosion.cpp.o"
  "CMakeFiles/dim2_explosion.dir/dim2_explosion.cpp.o.d"
  "dim2_explosion"
  "dim2_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dim2_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
