# Empty compiler generated dependencies file for dim2_explosion.
# This may be replaced when dependencies are built.
