# Empty dependencies file for ablate_prefetch_instr.
# This may be replaced when dependencies are built.
