file(REMOVE_RECURSE
  "CMakeFiles/ablate_prefetch_instr.dir/ablate_prefetch_instr.cpp.o"
  "CMakeFiles/ablate_prefetch_instr.dir/ablate_prefetch_instr.cpp.o.d"
  "ablate_prefetch_instr"
  "ablate_prefetch_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_prefetch_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
