# Empty dependencies file for ablate_ooc_heuristic.
# This may be replaced when dependencies are built.
