file(REMOVE_RECURSE
  "CMakeFiles/ablate_ooc_heuristic.dir/ablate_ooc_heuristic.cpp.o"
  "CMakeFiles/ablate_ooc_heuristic.dir/ablate_ooc_heuristic.cpp.o.d"
  "ablate_ooc_heuristic"
  "ablate_ooc_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ooc_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
