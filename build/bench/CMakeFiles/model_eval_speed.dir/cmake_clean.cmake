file(REMOVE_RECURSE
  "CMakeFiles/model_eval_speed.dir/model_eval_speed.cpp.o"
  "CMakeFiles/model_eval_speed.dir/model_eval_speed.cpp.o.d"
  "model_eval_speed"
  "model_eval_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_eval_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
