# Empty dependencies file for model_eval_speed.
# This may be replaced when dependencies are built.
