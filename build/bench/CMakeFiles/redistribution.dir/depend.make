# Empty dependencies file for redistribution.
# This may be replaced when dependencies are built.
