file(REMOVE_RECURSE
  "CMakeFiles/fig11_hy.dir/fig11_hy.cpp.o"
  "CMakeFiles/fig11_hy.dir/fig11_hy.cpp.o.d"
  "fig11_hy"
  "fig11_hy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
