# Empty compiler generated dependencies file for fig11_hy.
# This may be replaced when dependencies are built.
