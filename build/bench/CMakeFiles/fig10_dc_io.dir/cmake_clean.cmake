file(REMOVE_RECURSE
  "CMakeFiles/fig10_dc_io.dir/fig10_dc_io.cpp.o"
  "CMakeFiles/fig10_dc_io.dir/fig10_dc_io.cpp.o.d"
  "fig10_dc_io"
  "fig10_dc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
