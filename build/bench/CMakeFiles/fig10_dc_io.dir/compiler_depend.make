# Empty compiler generated dependencies file for fig10_dc_io.
# This may be replaced when dependencies are built.
