
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_dc_io.cpp" "bench/CMakeFiles/fig10_dc_io.dir/fig10_dc_io.cpp.o" "gcc" "bench/CMakeFiles/fig10_dc_io.dir/fig10_dc_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mheta_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/mheta_search.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mheta_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mheta_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mheta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/mheta_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/ooc/CMakeFiles/mheta_ooc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mheta_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/mheta_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mheta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mheta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mheta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
