# Empty compiler generated dependencies file for search_algorithms.
# This may be replaced when dependencies are built.
