file(REMOVE_RECURSE
  "CMakeFiles/search_algorithms.dir/search_algorithms.cpp.o"
  "CMakeFiles/search_algorithms.dir/search_algorithms.cpp.o.d"
  "search_algorithms"
  "search_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
