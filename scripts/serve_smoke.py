#!/usr/bin/env python3
"""End-to-end smoke test for the mheta-serve daemon.

Starts the daemon on a fresh Unix socket, drives a mixed request script
from several concurrent client connections, and asserts:

  * every response is ok:true and responses are byte-identical across
    clients for the same request line (the shared-cache contract),
  * the response cache served a nonzero number of hits and the daemon
    counted zero errors (read back through the `metrics` request kind),
  * the daemon's lint payload embeds exactly the report `mheta-lint
    --json` prints for the same input, and its predict total equals the
    `predicted_total_s` in `mheta-profile`'s attribution.json for the
    same triple (byte-identity pinning against the batch CLIs),
  * SIGTERM makes the daemon drain and exit 0, printing "drained".

Usage: serve_smoke.py [build-dir]   (default: build)
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

BUILD = sys.argv[1] if len(sys.argv) > 1 else "build"
SERVE = os.path.join(BUILD, "tools", "mheta-serve")
LINT = os.path.join(BUILD, "tools", "mheta-lint")
PROFILE = os.path.join(BUILD, "tools", "mheta-profile")

CLIENTS = 4

# One mixed script, replayed by every client: all five model kinds over a
# couple of apps, plus the even->blk alias to exercise key canonicalization.
REQUESTS = [
    {"kind": "ping", "id": 0, "echo": "smoke"},
    {"kind": "predict", "id": 1, "input": "jacobi", "arch": "HY1"},
    {"kind": "predict", "id": 2, "input": "jacobi", "arch": "HY1",
     "dist": "even"},
    {"kind": "predict", "id": 3, "input": "cg", "arch": "HY2", "dist": "bal"},
    {"kind": "bounds", "id": 4, "input": "jacobi", "arch": "HY1"},
    {"kind": "lint", "id": 5, "input": "jacobi", "arch": "HY1"},
    {"kind": "lint", "id": 6, "input": "multigrid", "arch": "DC"},
    {"kind": "whatif", "id": 7, "input": "jacobi", "arch": "HY1",
     "perturb": [{"param": "compute", "rank": 0, "factor": 2.0}]},
    {"kind": "search", "id": 8, "input": "jacobi", "arch": "HY1",
     "algorithm": "hill", "seed": 7},
]


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request_lines():
    return [json.dumps(r, sort_keys=True) for r in REQUESTS]


def run_client(sock_path, responses, index):
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(sock_path)
    reader = conn.makefile("r", encoding="utf-8")
    try:
        for line in request_lines():
            conn.sendall((line + "\n").encode())
            responses[index].append(reader.readline().rstrip("\n"))
    finally:
        conn.close()


def single_request(sock_path, request):
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(sock_path)
    try:
        conn.sendall((json.dumps(request) + "\n").encode())
        return conn.makefile("r", encoding="utf-8").readline()
    finally:
        conn.close()


def main():
    for binary in (SERVE, LINT, PROFILE):
        if not os.path.exists(binary):
            fail(f"missing binary {binary} (build it first)")

    workdir = tempfile.mkdtemp(prefix="serve_smoke_")
    sock_path = os.path.join(workdir, "s")  # sun_path is only 108 bytes
    daemon = subprocess.Popen(
        [SERVE, "--socket", sock_path, "--threads", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

    try:
        for _ in range(200):
            if os.path.exists(sock_path):
                break
            if daemon.poll() is not None:
                fail(f"daemon exited early: {daemon.stdout.read()}")
            time.sleep(0.05)
        else:
            fail("daemon never created its socket")

        # Concurrent mixed-script clients.
        responses = [[] for _ in range(CLIENTS)]
        threads = [
            threading.Thread(target=run_client,
                             args=(sock_path, responses, c))
            for c in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for c in range(CLIENTS):
            if len(responses[c]) != len(REQUESTS):
                fail(f"client {c}: {len(responses[c])} responses for "
                     f"{len(REQUESTS)} requests")
            for line in responses[c]:
                envelope = json.loads(line)
                if envelope.get("ok") is not True:
                    fail(f"request failed: {line}")
            if responses[c] != responses[0]:
                fail(f"client {c} read different bytes than client 0")
        print(f"serve_smoke: {CLIENTS} clients x {len(REQUESTS)} requests, "
              "all ok, byte-identical across clients")

        # Byte-identity pinning: the daemon's lint payload embeds exactly
        # the report mheta-lint --json prints for the same input.
        served = json.loads(single_request(
            sock_path, {"kind": "lint", "input": "jacobi", "arch": "HY1"}))
        cli = subprocess.run([LINT, "--json", "--arch", "HY1", "jacobi"],
                             capture_output=True, text=True)
        if cli.returncode != 0:
            fail(f"mheta-lint exited {cli.returncode}: {cli.stderr}")
        if served["payload"]["report"] != json.loads(cli.stdout):
            fail("daemon lint report differs from mheta-lint --json")
        print("serve_smoke: lint payload matches mheta-lint --json")

        # The daemon's predict total must equal the predicted_total_s
        # mheta-profile attributes for the same (input, arch, dist).
        served = json.loads(single_request(
            sock_path, {"kind": "predict", "input": "jacobi",
                        "arch": "HY1"}))
        profile_out = os.path.join(workdir, "profile")
        cli = subprocess.run([PROFILE, "jacobi", "--arch", "HY1",
                              "--out", profile_out],
                             capture_output=True, text=True)
        if cli.returncode != 0:
            fail(f"mheta-profile exited {cli.returncode}: {cli.stderr}")
        with open(os.path.join(profile_out, "attribution.json")) as f:
            predicted = json.load(f)["predicted_total_s"]
        if served["payload"]["total_s"] != predicted:
            fail(f"daemon predict {served['payload']['total_s']!r} != "
                 f"mheta-profile predicted_total_s {predicted!r}")
        print("serve_smoke: predict total matches mheta-profile "
              "attribution")

        # Counters, via the daemon's own metrics endpoint.
        metrics_text = json.loads(
            single_request(sock_path, {"kind": "metrics"}))["payload"]
        counters = {}
        for line in metrics_text.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.partition(" ")
                counters[name] = float(value)
        if counters.get("serve_cache_hits_total", 0) <= 0:
            fail(f"no cache hits recorded:\n{metrics_text}")
        if counters.get("serve_errors_total", 0) != 0:
            fail(f"daemon counted errors:\n{metrics_text}")
        # script + lint pin + predict pin + the metrics request itself
        expected = CLIENTS * len(REQUESTS) + 3
        if counters.get("serve_requests_total") != expected:
            fail(f"expected {expected} requests, metrics say "
                 f"{counters.get('serve_requests_total')}")
        print(f"serve_smoke: {int(counters['serve_cache_hits_total'])} cache "
              f"hits, 0 errors over {expected} requests")

        # Clean shutdown on SIGTERM.
        daemon.send_signal(signal.SIGTERM)
        try:
            output, _ = daemon.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()
            fail("daemon did not exit within 30s of SIGTERM")
        if daemon.returncode != 0:
            fail(f"daemon exited {daemon.returncode} on SIGTERM: {output}")
        if "drained" not in output:
            fail(f"daemon never reported draining: {output}")
        print("serve_smoke: SIGTERM -> drained, exit 0")
        print("serve_smoke: PASS")
    finally:
        if daemon.poll() is None:
            daemon.kill()


if __name__ == "__main__":
    main()
